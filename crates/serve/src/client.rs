//! A tiny blocking HTTP client for the serving endpoints — enough for
//! the integration tests, the bench harness and scripted smoke checks.
//! Keep-alive: one [`Client`] holds one connection and pipelines
//! sequential requests over it, reconnecting transparently if the
//! server closed it.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-request response timeout. Generous — the admission-control
/// contract is that the *server* answers within its own deadlines; the
/// client cap only turns a dead server into an error instead of a hang.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// One keep-alive connection to a serving instance.
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (`host:port`). Connects lazily.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), stream: None }
    }

    /// `GET path` (path may carry a query string). Returns
    /// `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, b"")
    }

    /// `POST /ingest` with a raw line-protocol body: one tweet per
    /// line, each either `id<TAB>text` or bare `text`.
    pub fn ingest(&mut self, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", "/ingest", body.as_bytes())
    }

    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<(u16, String)> {
        // One transparent retry: a keep-alive peer may have closed the
        // connection between requests.
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.stream = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, String)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        // The reborrow is infallible: just ensured above.
        let Some(stream) = self.stream.as_mut() else {
            return Err(std::io::Error::new(ErrorKind::NotConnected, "no connection"));
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(stream)
    }
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        match stream.read(&mut chunk)? {
            0 => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ))
            }
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "bad length"))?;
            }
        }
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk)? {
            0 => break,
            n => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Percent-encodes a query value (space as `%20`).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_encode_round_trips_through_server_decoding() {
        let original = "Andy Beshear spoke #covid 100%";
        let encoded = percent_encode(original);
        assert_eq!(crate::http::percent_decode(&encoded), original);
    }
}
