//! Per-endpoint serving counters and the ingest-to-ack latency
//! reservoir. Everything here is monotone and lock-cheap: handlers and
//! the ingest loop bump relaxed atomics, and the only lock is a small
//! fixed-size ring of latency samples taken once per acked tweet.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many of the most recent ack latencies the percentile ring keeps.
/// Percentiles are over a sliding window by design — an SLO readout
/// should reflect current behaviour, not the whole process lifetime.
const LATENCY_RING: usize = 8192;

/// Shared serving counters. One instance per [`crate::Server`],
/// readable at any time through the `/stats` endpoint.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Tweets acked after their batch's WAL commit.
    pub accepted: AtomicU64,
    /// Tweets accepted but truncated to the token cap.
    pub truncated: AtomicU64,
    /// Tweets rejected by the pipeline ([`ngl_core::BatchReport`]).
    pub rejected: AtomicU64,
    /// Tweets whose batch failed to commit (typed storage error).
    pub failed: AtomicU64,
    /// Ingest requests shed because the submission queue was full.
    pub shed_queue_full: AtomicU64,
    /// Ingest requests shed because the degradation ladder reached
    /// WalOnly/ReadOnly.
    pub shed_degraded: AtomicU64,
    /// Ingest requests shed because retention pressure crossed the
    /// configured threshold.
    pub shed_pressure: AtomicU64,
    /// Acks that did not arrive within the client's wait deadline (the
    /// tweet may still commit; the client must treat it as unknown).
    pub ack_timeouts: AtomicU64,
    /// Batches committed by the ingest loop.
    pub batches: AtomicU64,
    /// Tweets across all committed batches (mean batch size is
    /// `batch_tweets / batches`).
    pub batch_tweets: AtomicU64,
    /// Largest single batch the ingest loop has drained.
    pub max_batch: AtomicU64,
    /// Finalizes run by the ingest loop (each publishes a fresh query
    /// snapshot).
    pub finalizes: AtomicU64,
    /// Finalizes that returned a storage error.
    pub finalize_failures: AtomicU64,
    /// `/tag` queries served.
    pub queries_tag: AtomicU64,
    /// `/surface` queries served.
    pub queries_surface: AtomicU64,
    /// Malformed requests answered with a 4xx.
    pub bad_requests: AtomicU64,
    /// Spill page-cache hits, mirrored from the durable store after
    /// each ingest-loop operation (satellite: previously only visible
    /// via `ngl recover`).
    pub spill_cache_hits: AtomicU64,
    /// Spill page-cache misses, mirrored like `spill_cache_hits`.
    pub spill_cache_misses: AtomicU64,
    /// Transient IO faults absorbed by retry, mirrored from
    /// [`ngl_core::DurableGlobalizer::io_stats`].
    pub io_transient_retries: AtomicU64,
    /// IO ops that failed even after exhausting retries.
    pub io_retry_exhausted: AtomicU64,
    /// Total WAL bytes appended, mirrored from the store stats.
    pub wal_bytes_total: AtomicU64,
    /// Snapshots written, mirrored from the store stats.
    pub snapshots: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

impl ServeStats {
    /// Records one ingest-to-ack latency sample.
    pub fn record_ack_latency_us(&self, us: u64) {
        let mut ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples_us.len() < LATENCY_RING {
            ring.samples_us.push(us);
        } else {
            let at = ring.next;
            ring.samples_us[at] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// `(p50, p99)` ingest-to-ack latency in microseconds over the
    /// sample window, `(0, 0)` before the first ack.
    pub fn ack_latency_percentiles_us(&self) -> (u64, u64) {
        let ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples_us.is_empty() {
            return (0, 0);
        }
        let mut sorted = ring.samples_us.clone();
        sorted.sort_unstable();
        (percentile(&sorted, 50), percentile(&sorted, 99))
    }
}

/// Nearest-rank percentile over an ascending-sorted non-empty slice.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    let rank = (sorted.len() * p).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Relaxed load shorthand for stats readers.
pub(crate) fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// Relaxed add shorthand for stats writers.
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Relaxed max-update shorthand (batch-size high-water mark).
pub(crate) fn raise(counter: &AtomicU64, n: u64) {
    counter.fetch_max(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_small_windows() {
        let s = ServeStats::default();
        assert_eq!(s.ack_latency_percentiles_us(), (0, 0));
        s.record_ack_latency_us(10);
        assert_eq!(s.ack_latency_percentiles_us(), (10, 10));
        for us in [20, 30, 40] {
            s.record_ack_latency_us(us);
        }
        let (p50, p99) = s.ack_latency_percentiles_us();
        assert_eq!(p50, 20);
        assert_eq!(p99, 40);
    }

    #[test]
    fn ring_overwrites_oldest_samples() {
        let s = ServeStats::default();
        for _ in 0..LATENCY_RING {
            s.record_ack_latency_us(1_000_000);
        }
        for _ in 0..LATENCY_RING {
            s.record_ack_latency_us(5);
        }
        assert_eq!(s.ack_latency_percentiles_us(), (5, 5));
    }
}
