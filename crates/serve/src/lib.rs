//! # ngl-serve — the online serving front-end
//!
//! The paper frames the globalizer as a *streaming* system; this crate
//! is the shell that accepts the stream. It is a deliberately thin,
//! dependency-free layer (hand-rolled HTTP/1.1 over
//! `std::net::TcpListener`) over [`DurableGlobalizer`], in three
//! pieces:
//!
//! * **Batching ingest** — concurrent client connections feed a
//!   bounded submission queue; one dedicated engine thread drains it
//!   into size/time-bounded batches (`max_batch`, `max_delay_ms`) and
//!   commits them through
//!   [`DurableGlobalizer::process_batch_with_ids`]. Every tweet is
//!   acked only after its batch's WAL record is durable, and per-tweet
//!   [`ngl_core::BatchReport`] rejections travel back to the
//!   submitting client as typed statuses.
//! * **Query path** — `/tag` tags one message against the global state
//!   without mutating it, `/surface` lists a surface's clusters, types
//!   and staleness. Queries run against the **snapshot rule**: the
//!   engine publishes a full pipeline clone after every finalize, and
//!   readers see exactly that last finalized state — one `RwLock`
//!   pointer swap of contention, no interleaving with ingestion.
//! * **Admission control** — ingest sheds with typed responses instead
//!   of queueing unboundedly or hanging: HTTP 503 when the
//!   [`ngl_core::DegradationMode`] ladder reaches WalOnly/ReadOnly
//!   (e.g. chaos-injected ENOSPC), HTTP 429 when retention pressure
//!   crosses the configured threshold or the submission queue is full.
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /ingest` | Lines of `id<TAB>text` (or bare `text`); one typed ack per line |
//! | `GET /tag?q=…` | Read-only tagging against the last finalized state |
//! | `GET /surface?s=…` | Clusters / types / staleness for one surface |
//! | `GET /stats` | Counters, batch sizes, p50/p99 ingest-to-ack latency, spill/IO stats |
//! | `GET /health` | Degradation mode and admission verdict |
//! | `GET /digest` | State digest of the query snapshot |
//! | `GET /export` | Full checkpoint bytes of the query snapshot |
//! | `GET /recovery` | What `open()` replayed, including per-batch id partitions |

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use ngl_core::{
    DurableGlobalizer, NerGlobalizer, QueryTag, RecoveryReport, ShardedGlobalizer,
    ShardedRecoveryReport, SurfaceSummary,
};
use ngl_encoder::ContextualTagger;
use ngl_text::tokenize;

pub mod client;
pub mod devstack;
mod engine;
mod http;
mod stats;

pub use engine::{Ack, AckStatus};
pub use stats::ServeStats;

use engine::{mode_name, EngineStore, IngestItem, Shared};
use http::{json_escape, respond, ReadOutcome};
use stats::{add, get};

/// Ids auto-assigned to lines submitted without one start here, far
/// above any realistic client id space, and continue from the stored
/// stream length so restarts don't collide with themselves.
const AUTO_ID_BASE: u64 = 1 << 62;

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Largest batch the ingest loop commits at once.
    pub max_batch: usize,
    /// How long the ingest loop waits to fill a batch after its first
    /// tweet arrives.
    pub max_delay_ms: u64,
    /// Bound of the submission queue; beyond it ingest sheds with a
    /// typed `queue_full` status.
    pub queue_cap: usize,
    /// Batches per finalize (each finalize publishes a fresh query
    /// snapshot). The queue going idle also triggers a finalize.
    pub finalize_every: usize,
    /// How long an ingest request waits for its acks before answering
    /// with a typed `ack_timeout` status (the tweet may still commit).
    pub ack_timeout_ms: u64,
    /// Retention pressure, in permille of the configured cap, at which
    /// ingest sheds (1000 = exactly at cap; eviction runs at finalize
    /// time, so sustained values well above 1000 mean ingest is
    /// outrunning eviction).
    pub pressure_shed_milli: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 64,
            max_delay_ms: 5,
            queue_cap: 1024,
            finalize_every: 8,
            ack_timeout_ms: 10_000,
            pressure_shed_milli: 2000,
        }
    }
}

/// What `open()` replayed before serving started: one report for a
/// single-lineage store, per-shard reports plus the combined digest
/// for a sharded one.
#[derive(Debug, Clone)]
pub enum ServeRecovery {
    Single(RecoveryReport),
    Sharded(ShardedRecoveryReport),
}

/// A running serving instance. Dropping it without calling
/// [`Self::shutdown`] leaves the background threads running until the
/// process exits.
pub struct Server<T: ContextualTagger> {
    addr: SocketAddr,
    shared: Arc<Shared<T>>,
    tx: SyncSender<IngestItem>,
    accept_handle: Option<thread::JoinHandle<()>>,
    engine_handle: Option<thread::JoinHandle<()>>,
    recovery: Arc<ServeRecovery>,
}

/// Everything a connection handler needs, cloned per connection.
struct HandlerCtx<T: ContextualTagger> {
    shared: Arc<Shared<T>>,
    tx: SyncSender<IngestItem>,
    recovery: Arc<ServeRecovery>,
    auto_id: Arc<AtomicU64>,
    ack_timeout: Duration,
    pressure_shed_milli: u64,
}

impl<T: ContextualTagger> Clone for HandlerCtx<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            tx: self.tx.clone(),
            recovery: self.recovery.clone(),
            auto_id: self.auto_id.clone(),
            ack_timeout: self.ack_timeout,
            pressure_shed_milli: self.pressure_shed_milli,
        }
    }
}

impl<T: ContextualTagger> HandlerCtx<T> {
    fn snapshot(&self) -> Arc<NerGlobalizer<T>> {
        self.shared.snapshot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl<T: ContextualTagger + Clone + Send + Sync + 'static> Server<T> {
    /// Starts serving over an opened durable store. Binds synchronously
    /// — when this returns, the listener accepts connections and the
    /// first query snapshot (the recovered, finalized state) is
    /// published.
    pub fn start(
        durable: DurableGlobalizer<T>,
        recovery: RecoveryReport,
        cfg: ServeConfig,
    ) -> std::io::Result<Self> {
        Self::start_store(EngineStore::Single(Box::new(durable)), ServeRecovery::Single(recovery), cfg)
    }

    /// [`Self::start`] over a hash-partitioned [`ShardedGlobalizer`]:
    /// ingest fans out to every shard (replicated ingest, partitioned
    /// ownership), queries and `/export` serve the merged cross-shard
    /// view, admission gates on the best shard's rung and `/stats` /
    /// `/health` surface the worst-of aggregate.
    pub fn start_sharded(
        sharded: ShardedGlobalizer<T>,
        recovery: ShardedRecoveryReport,
        cfg: ServeConfig,
    ) -> std::io::Result<Self> {
        Self::start_store(EngineStore::Sharded(Box::new(sharded)), ServeRecovery::Sharded(recovery), cfg)
    }

    fn start_store(
        mut store: EngineStore<T>,
        recovery: ServeRecovery,
        cfg: ServeConfig,
    ) -> std::io::Result<Self> {
        // Startup finalize: recovery replays committed batches, but the
        // pre-crash run may have died between a batch commit and its
        // finalize. Folding the tail in now makes the published
        // snapshot (and /digest) a function of the *acked batch
        // partition alone*, which is what the kill-under-load oracle
        // compares against. A no-op finalize doesn't change state.
        let startup_finalize_ok = store.finalize().is_ok();
        let shared = Arc::new(Shared {
            stats: ServeStats::default(),
            mode: AtomicU8::new(0),
            worst_mode: AtomicU8::new(0),
            shard_count: store.shard_count(),
            pressure_milli: AtomicU64::new(0),
            snapshot: RwLock::new(Arc::new(store.query_view().clone())),
            shutdown: AtomicBool::new(false),
        });
        if startup_finalize_ok {
            add(&shared.stats.finalizes, 1);
        } else {
            add(&shared.stats.finalize_failures, 1);
        }
        engine::refresh_store_view(&shared, &store);
        let auto_id =
            Arc::new(AtomicU64::new(AUTO_ID_BASE + store.query_view().tweet_base().len() as u64));

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel(cfg.queue_cap.max(1));
        let recovery = Arc::new(recovery);

        let engine_shared = shared.clone();
        let engine_cfg = cfg.clone();
        let engine_handle = thread::Builder::new()
            .name("ngl-serve-engine".to_string())
            .spawn(move || engine::run(store, rx, engine_shared, engine_cfg))?;

        let ctx = HandlerCtx {
            shared: shared.clone(),
            tx: tx.clone(),
            recovery: recovery.clone(),
            auto_id,
            ack_timeout: Duration::from_millis(cfg.ack_timeout_ms.max(1)),
            pressure_shed_milli: cfg.pressure_shed_milli.max(1),
        };
        let accept_shared = shared.clone();
        let accept_handle = thread::Builder::new()
            .name("ngl-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_ctx = ctx.clone();
                    // Thread-per-connection: clients are expected to
                    // keep connections alive, so the spawn cost is paid
                    // once per client, not per request.
                    let _ = thread::Builder::new()
                        .name("ngl-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, conn_ctx));
                }
            })?;

        Ok(Self {
            addr,
            shared,
            tx,
            accept_handle: Some(accept_handle),
            engine_handle: Some(engine_handle),
            recovery,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// What `open()` replayed before serving started.
    pub fn recovery(&self) -> &ServeRecovery {
        &self.recovery
    }

    /// Stops accepting, drains the ingest queue, finalizes, and joins
    /// the background threads. The durable store is dropped cleanly.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.engine_handle.take() {
            let _ = handle.join();
        }
        drop(self.tx);
    }
}

fn handle_connection<T: ContextualTagger>(mut stream: TcpStream, ctx: HandlerCtx<T>) {
    if stream.set_read_timeout(Some(http::READ_TICK)).is_err() || stream.set_nodelay(true).is_err()
    {
        return;
    }
    loop {
        match http::read_request(&mut stream, &ctx.shared.shutdown) {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(msg) => {
                add(&ctx.shared.stats.bad_requests, 1);
                let _ = respond(&mut stream, 400, "application/json", err_json(msg).as_bytes());
                return;
            }
            ReadOutcome::Ready(req) => {
                if !dispatch(&mut stream, &req, &ctx) {
                    return;
                }
            }
        }
    }
}

/// Routes one request; returns whether the connection stays open.
fn dispatch<T: ContextualTagger>(
    stream: &mut TcpStream,
    req: &http::Request,
    ctx: &HandlerCtx<T>,
) -> bool {
    let (status, body) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/ingest") => ingest(req, ctx),
        ("GET", "/tag") => tag(req, ctx),
        ("GET", "/surface") => surface(req, ctx),
        ("GET", "/stats") => (200, stats_json(ctx)),
        ("GET", "/health") => health_json(ctx),
        ("GET", "/digest") => digest_json(ctx),
        ("GET", "/recovery") => (200, recovery_json(&ctx.recovery)),
        ("GET", "/export") => {
            let bytes = ctx.snapshot().export_state_bytes();
            return respond(stream, 200, "application/octet-stream", &bytes).is_ok();
        }
        _ => {
            add(&ctx.shared.stats.bad_requests, 1);
            (404, err_json("unknown endpoint"))
        }
    };
    respond(stream, status, "application/json", body.as_bytes()).is_ok()
}

fn err_json(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json_escape(msg))
}

// ---- ingest ------------------------------------------------------------

fn ingest<T: ContextualTagger>(req: &http::Request, ctx: &HandlerCtx<T>) -> (u16, String) {
    let stats = &ctx.shared.stats;
    let Ok(text) = std::str::from_utf8(&req.body) else {
        add(&stats.bad_requests, 1);
        return (400, err_json("body must be UTF-8"));
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        add(&stats.bad_requests, 1);
        return (400, err_json("no tweets in body"));
    }
    // Admission ladder, checked before anything is enqueued:
    // WalOnly/ReadOnly → the store cannot take (or cannot safely take)
    // writes, shed the whole request; retention pressure → the pipeline
    // is outrunning eviction, shed; queue full → per-line shed below.
    let mode = ctx.shared.mode.load(Ordering::Relaxed);
    if mode >= engine::mode_to_u8(ngl_core::DegradationMode::WalOnly) {
        add(&stats.shed_degraded, lines.len() as u64);
        return (
            503,
            format!("{{\"error\":\"degraded\",\"mode\":\"{}\"}}", mode_name(mode)),
        );
    }
    let pressure = ctx.shared.pressure_milli.load(Ordering::Relaxed);
    if pressure >= ctx.pressure_shed_milli {
        add(&stats.shed_pressure, lines.len() as u64);
        return (
            429,
            format!("{{\"error\":\"retention_pressure\",\"pressure_milli\":{pressure}}}"),
        );
    }

    enum Slot {
        Waiting(u64, mpsc::Receiver<Ack>),
        Done(u64, &'static str),
    }
    let mut slots = Vec::with_capacity(lines.len());
    let mut any_shed = false;
    for line in lines {
        let (id, tweet) = match line.split_once('\t') {
            Some((prefix, rest)) if prefix.trim().parse::<u64>().is_ok() => {
                // The parse was just checked; unwrap-free re-parse.
                (prefix.trim().parse::<u64>().unwrap_or(0), rest)
            }
            _ => (ctx.auto_id.fetch_add(1, Ordering::Relaxed), line),
        };
        let tokens: Vec<String> = tokenize(tweet).into_iter().map(|t| t.text).collect();
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        let item = IngestItem { id, tokens, submitted: Instant::now(), ack: ack_tx };
        match ctx.tx.try_send(item) {
            Ok(()) => slots.push(Slot::Waiting(id, ack_rx)),
            Err(TrySendError::Full(_)) => {
                add(&stats.shed_queue_full, 1);
                any_shed = true;
                slots.push(Slot::Done(id, "shed_queue_full"));
            }
            Err(TrySendError::Disconnected(_)) => {
                slots.push(Slot::Done(id, "failed"));
            }
        }
    }
    let deadline = Instant::now() + ctx.ack_timeout;
    let mut out = String::from("{\"results\":[");
    for (i, slot) in slots.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match slot {
            Slot::Done(id, status) => {
                out.push_str(&format!("{{\"id\":{id},\"status\":\"{status}\"}}"));
            }
            Slot::Waiting(id, rx) => {
                let left = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(left) {
                    Ok(ack) => {
                        let status = match ack.status {
                            AckStatus::Acked => "acked",
                            AckStatus::AckedTruncated => "acked_truncated",
                            AckStatus::Rejected => "rejected",
                            AckStatus::Failed => "failed",
                        };
                        match ack.detail {
                            Some(detail) => out.push_str(&format!(
                                "{{\"id\":{id},\"status\":\"{status}\",\"detail\":\"{}\"}}",
                                json_escape(&detail)
                            )),
                            None => out
                                .push_str(&format!("{{\"id\":{id},\"status\":\"{status}\"}}")),
                        }
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                        add(&stats.ack_timeouts, 1);
                        out.push_str(&format!("{{\"id\":{id},\"status\":\"ack_timeout\"}}"));
                    }
                }
            }
        }
    }
    out.push_str("]}");
    (if any_shed { 429 } else { 200 }, out)
}

// ---- queries -----------------------------------------------------------

fn tag<T: ContextualTagger>(req: &http::Request, ctx: &HandlerCtx<T>) -> (u16, String) {
    let Some(q) = req.query.get("q") else {
        add(&ctx.shared.stats.bad_requests, 1);
        return (400, err_json("missing query parameter q"));
    };
    let tokens: Vec<String> = tokenize(q).into_iter().map(|t| t.text).collect();
    let snapshot = ctx.snapshot();
    let tags = snapshot.tag_query(&tokens);
    add(&ctx.shared.stats.queries_tag, 1);
    let mut out = String::from("{\"tokens\":[");
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(t)));
    }
    out.push_str("],\"spans\":[");
    for (i, t) in tags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&query_tag_json(t));
    }
    out.push_str("]}");
    (200, out)
}

fn query_tag_json(t: &QueryTag) -> String {
    let mut out = format!(
        "{{\"start\":{},\"end\":{},\"type\":\"{:?}\",\"global\":{}",
        t.span.start, t.span.end, t.span.ty, t.global
    );
    if let Some(surface) = &t.surface {
        out.push_str(&format!(",\"surface\":\"{}\"", json_escape(surface)));
    }
    if let Some(score) = t.score {
        out.push_str(&format!(",\"score\":{score:.6}"));
    }
    out.push('}');
    out
}

fn surface<T: ContextualTagger>(req: &http::Request, ctx: &HandlerCtx<T>) -> (u16, String) {
    let Some(s) = req.query.get("s") else {
        add(&ctx.shared.stats.bad_requests, 1);
        return (400, err_json("missing query parameter s"));
    };
    let snapshot = ctx.snapshot();
    let summary = snapshot.surface_summary(s);
    add(&ctx.shared.stats.queries_surface, 1);
    (200, surface_summary_json(&summary))
}

fn surface_summary_json(s: &SurfaceSummary) -> String {
    let mut out = format!(
        "{{\"surface\":\"{}\",\"known\":{},\"resident\":{},\"mentions\":{},\"touched\":{},\"stale_frozen\":{},\"clusters\":[",
        json_escape(&s.surface),
        s.known,
        s.resident,
        s.mentions,
        s.touched,
        s.stale_frozen
    );
    for (i, c) in s.clusters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let label = match c.label {
            None => "\"unclassified\"".to_string(),
            Some(None) => "\"non-entity\"".to_string(),
            Some(Some(ty)) => format!("\"{ty:?}\""),
        };
        out.push_str(&format!("{{\"label\":{label},\"members\":{}}}", c.members));
    }
    out.push_str("]}");
    out
}

// ---- introspection -----------------------------------------------------

fn stats_json<T: ContextualTagger>(ctx: &HandlerCtx<T>) -> String {
    let s = &ctx.shared.stats;
    let (p50, p99) = s.ack_latency_percentiles_us();
    let mode = ctx.shared.mode.load(Ordering::Relaxed);
    format!(
        concat!(
            "{{\"accepted\":{},\"truncated\":{},\"rejected\":{},\"failed\":{},",
            "\"shed_queue_full\":{},\"shed_degraded\":{},\"shed_pressure\":{},",
            "\"ack_timeouts\":{},\"batches\":{},\"batch_tweets\":{},\"max_batch\":{},",
            "\"finalizes\":{},\"finalize_failures\":{},",
            "\"queries_tag\":{},\"queries_surface\":{},\"bad_requests\":{},",
            "\"ack_p50_us\":{},\"ack_p99_us\":{},",
            "\"mode\":\"{}\",\"worst_mode\":\"{}\",\"shard_count\":{},\"pressure_milli\":{},",
            "\"spill_cache_hits\":{},\"spill_cache_misses\":{},",
            "\"io_transient_retries\":{},\"io_retry_exhausted\":{},",
            "\"wal_bytes_total\":{},\"snapshots\":{}}}"
        ),
        get(&s.accepted),
        get(&s.truncated),
        get(&s.rejected),
        get(&s.failed),
        get(&s.shed_queue_full),
        get(&s.shed_degraded),
        get(&s.shed_pressure),
        get(&s.ack_timeouts),
        get(&s.batches),
        get(&s.batch_tweets),
        get(&s.max_batch),
        get(&s.finalizes),
        get(&s.finalize_failures),
        get(&s.queries_tag),
        get(&s.queries_surface),
        get(&s.bad_requests),
        p50,
        p99,
        mode_name(mode),
        mode_name(ctx.shared.worst_mode.load(Ordering::Relaxed)),
        ctx.shared.shard_count,
        ctx.shared.pressure_milli.load(Ordering::Relaxed),
        get(&s.spill_cache_hits),
        get(&s.spill_cache_misses),
        get(&s.io_transient_retries),
        get(&s.io_retry_exhausted),
        get(&s.wal_bytes_total),
        get(&s.snapshots),
    )
}

fn health_json<T: ContextualTagger>(ctx: &HandlerCtx<T>) -> (u16, String) {
    let mode = ctx.shared.mode.load(Ordering::Relaxed);
    let worst = ctx.shared.worst_mode.load(Ordering::Relaxed);
    let pressure = ctx.shared.pressure_milli.load(Ordering::Relaxed);
    let admitting = mode < engine::mode_to_u8(ngl_core::DegradationMode::WalOnly)
        && pressure < ctx.pressure_shed_milli;
    (
        200,
        format!(
            concat!(
                "{{\"mode\":\"{}\",\"worst_mode\":\"{}\",\"shard_count\":{},",
                "\"pressure_milli\":{},\"admitting\":{}}}"
            ),
            mode_name(mode),
            mode_name(worst),
            ctx.shared.shard_count,
            pressure,
            admitting
        ),
    )
}

fn digest_json<T: ContextualTagger>(ctx: &HandlerCtx<T>) -> (u16, String) {
    let snapshot = ctx.snapshot();
    (
        200,
        format!(
            "{{\"digest\":\"{}\",\"tweets\":{},\"surfaces\":{},\"watermark\":{}}}",
            snapshot.state_digest(),
            snapshot.tweet_base().len(),
            snapshot.n_surfaces(),
            snapshot.scan_watermark()
        ),
    )
}

fn recovery_json(r: &ServeRecovery) -> String {
    match r {
        ServeRecovery::Single(report) => recovery_report_json(report),
        ServeRecovery::Sharded(report) => {
            let mut out = String::from("{\"shards\":[");
            for (i, shard) in report.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&recovery_report_json(shard));
            }
            out.push_str("],\"caught_up_ops\":[");
            for (i, ops) in report.caught_up_ops.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&ops.to_string());
            }
            out.push_str(&format!(
                "],\"shard_count\":{},\"combined_digest\":\"{}\"}}",
                report.shards.len(),
                report.combined_digest
            ));
            out
        }
    }
}

fn recovery_report_json(r: &RecoveryReport) -> String {
    let mut out = format!(
        concat!(
            "{{\"snapshot_seq\":{},\"replayed_batches\":{},\"replayed_finalizes\":{},",
            "\"torn_tail\":{},\"watermark\":{},\"surfaces\":{},\"resident_surfaces\":{},",
            "\"tweets\":{},\"digest\":\"{}\",\"unverified_finalizes\":{},\"batch_ids\":["
        ),
        r.snapshot_seq.map_or("null".to_string(), |s| s.to_string()),
        r.replayed_batches,
        r.replayed_finalizes,
        r.torn_tail,
        r.watermark,
        r.surfaces,
        r.resident_surfaces,
        r.tweets,
        r.digest,
        r.unverified_finalizes,
    );
    for (i, ids) in r.batch_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, id) in ids.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&id.to_string());
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}
