//! A deterministic, training-free model stack for serving tests,
//! benches and the development harness.
//!
//! Every component is seeded: two processes building the devstack get
//! bitwise-identical weights, which is what lets the kill-under-load
//! suite compare a crash-recovered server against a clean in-process
//! run. **Untrained** is deliberate — tag quality is irrelevant to the
//! serving contracts (durability, batching, admission), and skipping
//! training keeps harness startup to milliseconds.

use ngl_core::{
    ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer, PhraseEmbedder,
    PhraseEmbedderConfig,
};
use ngl_encoder::{EncoderConfig, TokenEncoder};

/// Builds the deterministic untrained pipeline used by `serve`
/// integration tests and benches.
pub fn pipeline(cfg: GlobalizerConfig) -> NerGlobalizer<TokenEncoder> {
    let encoder = TokenEncoder::new(EncoderConfig::default());
    let dim = encoder.out_dim();
    NerGlobalizer::new(
        encoder,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devstack_is_deterministic_across_builds() {
        let cfg = GlobalizerConfig::default();
        let mut a = pipeline(cfg);
        let mut b = pipeline(cfg);
        let tweets = vec![vec!["Andy".to_string(), "Beshear".to_string(), "spoke".to_string()]];
        a.process_batch(&tweets);
        b.process_batch(&tweets);
        a.finalize();
        b.finalize();
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.export_state_bytes(), b.export_state_bytes());
    }
}
