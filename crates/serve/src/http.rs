//! Minimal HTTP/1.1 framing over blocking sockets — just enough for
//! the serving endpoints: request-line + headers + `Content-Length`
//! bodies, keep-alive connections, and percent-decoded query strings.
//! Hand-rolled because the workspace is dependency-free by charter; the
//! parser is deliberately strict and size-capped so a malformed or
//! adversarial client costs one bounded read, not a hang.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-read socket timeout; the read loop re-checks the shutdown flag
/// at this cadence, so connections notice shutdown promptly.
pub(crate) const READ_TICK: Duration = Duration::from_millis(100);
/// How long an idle keep-alive connection is held open.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a started request may take to arrive in full.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Percent-decoded query parameters.
    pub query: HashMap<String, String>,
    pub body: Vec<u8>,
}

/// Why [`read_request`] returned no request.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete request was parsed.
    Ready(Request),
    /// Clean end of connection (EOF, idle timeout, or shutdown).
    Closed,
    /// The peer sent something unparseable; the caller should answer
    /// 400 and close.
    Malformed(&'static str),
}

/// Reads one request off a keep-alive connection. Blocks in `READ_TICK`
/// slices so `shutdown` is honoured within one tick.
pub(crate) fn read_request(stream: &mut TcpStream, shutdown: &AtomicBool) -> ReadOutcome {
    let started = Instant::now();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    // Head: read until the blank line.
    let head_end = loop {
        if let Some(at) = find_head_end(&buf) {
            break at;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed("request head too large");
        }
        if shutdown.load(Ordering::Relaxed) {
            return ReadOutcome::Closed;
        }
        let deadline = if buf.is_empty() { IDLE_TIMEOUT } else { REQUEST_TIMEOUT };
        if started.elapsed() > deadline {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return ReadOutcome::Malformed("non-UTF-8 request head"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return ReadOutcome::Malformed("bad request line");
    };
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(_) => return ReadOutcome::Malformed("body too large"),
                Err(_) => return ReadOutcome::Malformed("bad content-length"),
            }
        }
    }
    let (path, query) = parse_target(target);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        if shutdown.load(Ordering::Relaxed) || started.elapsed() > REQUEST_TIMEOUT {
            return ReadOutcome::Closed;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    body.truncate(content_length);
    ReadOutcome::Ready(Request { method: method.to_string(), path, query, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_target(target: &str) -> (String, HashMap<String, String>) {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }
    (path.to_string(), query)
}

/// Decodes `%XX` escapes and `+`-as-space (form/query encoding).
pub(crate) fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 2;
                    }
                    _ => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Writes one response with `Connection: keep-alive` framing.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Escapes a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_decodes_query_pairs() {
        let (path, query) = parse_target("/tag?q=andy+beshear%20spoke&x=1");
        assert_eq!(path, "/tag");
        assert_eq!(query["q"], "andy beshear spoke");
        assert_eq!(query["x"], "1");
    }

    #[test]
    fn percent_decode_passes_malformed_escapes_through() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("a%2Gb"), "a%2Gb");
        assert_eq!(percent_decode("%41"), "A");
    }

    #[test]
    fn json_escape_covers_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
