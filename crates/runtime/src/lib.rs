//! # ngl-runtime
//!
//! A dependency-free parallel executor for the Globalizer pipeline's
//! embarrassingly parallel stages (per-tweet encoding, the CTrie scan +
//! phrase embedding, per-surface clustering and classification), built
//! on a **persistent work-stealing worker pool** ([`pool`]).
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism** — results are assembled in input order no matter
//!    how the OS schedules workers, and with one worker the execution
//!    is *exactly* the sequential loop (same call order, same thread).
//!    Combined with per-item purity this makes parallel output bitwise
//!    identical to sequential output at any thread count.
//! 2. **Zero dependencies** — built on [`std::thread`], atomics and
//!    mutexes only, so every crate in the workspace can use it without
//!    pulling in a thread-pool ecosystem.
//! 3. **No per-call spawn cost** — workers are spawned once per
//!    [`Executor`] and parked when idle; each `par_map` submits
//!    *tickets* against the pool instead of spawning threads, so small
//!    batches no longer pay thread-creation latency.
//! 4. **Dynamic load balance** — workers pull the next item index from
//!    a shared atomic counter, so skewed per-item costs (one surface
//!    form with thousands of mentions next to hundreds of singletons)
//!    don't serialize on the slowest static shard; idle workers also
//!    steal queued tickets from busy siblings' deques.
//!
//! Worker count comes from [`Executor::from_env`] (the `NGL_THREADS`
//! environment variable, defaulting to the machine's available
//! parallelism); `NGL_THREADS=1` is the exact sequential fallback and
//! spawns no pool at all.
//!
//! A panic in any task propagates to the caller once the call's items
//! drain — without killing any pool worker, so the executor stays
//! usable afterwards. For pipelines that must *survive* poison inputs
//! instead, [`Executor::try_par_map`] isolates each task with
//! [`std::panic::catch_unwind`] and turns a panicking task into a typed
//! [`TaskError`] while every other task completes normally.
//!
//! The [`faults`] module provides a deterministic, seedable fault plan
//! for stress-testing pipelines built on this executor.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod faults;
pub mod pool;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pool::{Pool, PoolStats};

/// A task that panicked inside [`Executor::try_par_map`], captured as a
/// value instead of tearing down the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Input-order index of the failed task.
    pub index: usize,
    /// Caller-provided summary of the input payload (empty when the
    /// caller supplied none) — keeps diagnostics useful without
    /// requiring `T: Debug` or holding the (possibly huge) payload.
    pub payload: String,
    /// The panic message, when the payload was a `&str` or `String`.
    pub message: String,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task #{} panicked: {}", self.index, self.message)?;
        if !self.payload.is_empty() {
            write!(f, " (payload: {})", self.payload)?;
        }
        Ok(())
    }
}

impl std::error::Error for TaskError {}

/// Best-effort extraction of a human-readable message from a panic
/// payload (`&str` and `String` cover `panic!`, `assert!`, `expect` and
/// friends).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "NGL_THREADS";

/// A parallel executor with a fixed worker count backed by a persistent
/// work-stealing pool (clones share the same pool).
///
/// ```
/// use ngl_runtime::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.par_map((0..8usize).collect(), |_, x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // One worker is the exact sequential loop.
/// assert_eq!(squares, Executor::sequential().par_map((0..8usize).collect(), |_, x| x * x));
/// ```
#[derive(Clone)]
pub struct Executor {
    threads: usize,
    /// `None` for the sequential executor (`threads <= 1`): no threads
    /// are spawned and every call runs inline on the caller.
    pool: Option<Arc<Pool>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    /// `threads - 1` pool workers are spawned once, here; the caller of
    /// every map participates as the final worker.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = if threads > 1 { Some(Arc::new(Pool::new(threads - 1))) } else { None };
        Self { threads, pool }
    }

    /// The exact sequential fallback (one worker, no threads spawned).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Worker count from the `NGL_THREADS` environment variable;
    /// unset, empty, `0` or unparsable values fall back to
    /// [`available_parallelism`].
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Self::new(n),
                _ => Self::new(available_parallelism()),
            },
            Err(_) => Self::new(available_parallelism()),
        }
    }

    /// The process-wide shared executor: one pool, sized by
    /// [`Self::from_env`] on first use, handed out as clones (which all
    /// share that pool — see `clones_share_one_pool`). Components that
    /// may coexist in one process (a serving ingest loop and its query
    /// handlers, several pipelines in one test) use this instead of
    /// each spawning a private pool and oversubscribing the cores.
    ///
    /// The pool lives for the rest of the process: the registry keeps
    /// one clone forever, so workers are never joined. That is the
    /// point — a shared pool must outlive any individual user.
    pub fn shared() -> Self {
        static SHARED: std::sync::OnceLock<Executor> = std::sync::OnceLock::new();
        SHARED.get_or_init(Self::from_env).clone()
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Scheduler counters of the backing pool (`None` for the
    /// sequential executor). Exposed for tests and benches.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Maps `f` over owned `items`, returning results **in input
    /// order**. `f` receives `(index, item)`.
    ///
    /// With one worker (or ≤ 1 item) this runs inline on the calling
    /// thread with no synchronization — the exact sequential loop.
    /// Otherwise items are pulled dynamically by up to
    /// `min(threads, len)` workers of the persistent pool (caller
    /// included); a panicking `f` propagates to the caller after the
    /// call drains, leaving the pool fully reusable.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        let pool = match &self.pool {
            Some(p) if workers > 1 => p,
            _ => return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect(),
        };
        // Item slots are taken exactly once (dynamic scheduling via the
        // shared counter); result slots are written exactly once and
        // drained in input order after the pool call returns.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // First panic wins; the counter is then exhausted so the call
        // stops scheduling further items instead of wasting work.
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let pull = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item taken once");
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(r) => *results[i].lock().expect("result slot poisoned") = Some(r),
                Err(p) => {
                    let mut g = panicked.lock().expect("panic slot poisoned");
                    if g.is_none() {
                        *g = Some(p);
                    }
                    drop(g);
                    next.store(n, Ordering::Relaxed);
                }
            }
        };
        pool.run(workers - 1, &pull);
        if let Some(p) = panicked.into_inner().expect("panic slot poisoned") {
            resume_unwind(p);
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("result written")
            })
            .collect()
    }

    /// Panic-isolated variant of [`Self::par_map`]: each task runs
    /// under [`std::panic::catch_unwind`], so a panicking `f` yields
    /// `Err(TaskError)` for that slot while every other task completes
    /// normally. Results are still assembled **in input order**, and
    /// with one worker the execution is still the exact sequential
    /// loop, so the determinism contract of `par_map` carries over
    /// unchanged (including for which tasks fail).
    ///
    /// ```
    /// use ngl_runtime::Executor;
    ///
    /// let out = Executor::new(4).try_par_map((0..4usize).collect(), |_, x| {
    ///     if x == 2 { panic!("poison"); }
    ///     x * 10
    /// });
    /// assert_eq!(out[0], Ok(0));
    /// assert_eq!(out[3], Ok(30));
    /// assert_eq!(out[2].as_ref().unwrap_err().message, "poison");
    /// ```
    pub fn try_par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, TaskError>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.try_par_map_described(items, |_| String::new(), f)
    }

    /// [`Self::try_par_map`] with a payload summarizer: `describe` runs
    /// on each item *before* the task body, and its output is attached
    /// to the [`TaskError`] if that task panics. `describe` itself is
    /// also panic-isolated (a panicking summarizer degrades to a
    /// placeholder summary, never a lost task).
    pub fn try_par_map_described<T, R, D, F>(
        &self,
        items: Vec<T>,
        describe: D,
        f: F,
    ) -> Vec<Result<R, TaskError>>
    where
        T: Send,
        R: Send,
        D: Fn(&T) -> String + Sync,
        F: Fn(usize, T) -> R + Sync,
    {
        let run = |i: usize, item: T| -> Result<R, TaskError> {
            let payload = catch_unwind(AssertUnwindSafe(|| describe(&item)))
                .unwrap_or_else(|_| "<payload summary unavailable>".to_string());
            catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|p| TaskError {
                index: i,
                payload,
                message: panic_message(p),
            })
        };
        let n = items.len();
        let workers = self.threads.min(n);
        let pool = match &self.pool {
            Some(p) if workers > 1 => p,
            _ => return items.into_iter().enumerate().map(|(i, t)| run(i, t)).collect(),
        };
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<Result<R, TaskError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let run = &run;
        // `run` never unwinds (panics are caught inside), so the pull
        // loop survives poison items and every result slot is written.
        let pull = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item taken once");
            let r = run(i, item);
            *results[i].lock().expect("result slot poisoned") = Some(r);
        };
        pool.run(workers - 1, &pull);
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("result written")
            })
            .collect()
    }

    /// Borrowing convenience over [`Self::par_map`]: maps `f` over
    /// `&items[i]` without taking ownership.
    pub fn par_map_ref<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &'a T) -> R + Sync,
    {
        self.par_map(items.iter().collect(), f)
    }

    /// Runs `f` over contiguous chunks of `items` (the last chunk may
    /// be shorter), returning per-chunk results in chunk order. `f`
    /// receives `(offset_of_first_item, chunk)`.
    ///
    /// Use this when per-item work is too small to amortize the
    /// per-item scheduling of [`Self::par_map`].
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<(usize, &[T])> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, c)| (ci * chunk_size, c))
            .collect();
        self.par_map(chunks, |_, (offset, chunk)| f(offset, chunk))
    }
}

/// The machine's available parallelism, defaulting to 1 when the query
/// fails (e.g. restricted containers).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 3, 8, 64] {
            let exec = Executor::new(threads);
            let out = exec.par_map((0..100usize).collect(), |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100usize).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_matches_sequential_exactly() {
        let items: Vec<String> = (0..57).map(|i| format!("tok{i}")).collect();
        let f = |_: usize, s: &String| format!("{s}!");
        let seq = Executor::sequential().par_map_ref(&items, f);
        let par = Executor::new(4).par_map_ref(&items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = Executor::new(7).par_map((0..500usize).collect(), |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn par_map_handles_empty_and_singleton() {
        let exec = Executor::new(8);
        let empty: Vec<usize> = exec.par_map(Vec::new(), |_, x: usize| x);
        assert!(empty.is_empty());
        assert_eq!(exec.par_map(vec![41usize], |_, x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_moves_non_clone_items() {
        struct NoClone(usize);
        let items: Vec<NoClone> = (0..20).map(NoClone).collect();
        let out = Executor::new(3).par_map(items, |_, NoClone(x)| x);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_all_items_with_correct_offsets() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 4] {
            let sums = Executor::new(threads).par_chunks(&items, 10, |offset, chunk| {
                assert_eq!(chunk[0], offset);
                chunk.iter().sum::<usize>()
            });
            assert_eq!(sums.len(), 11);
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        Executor::new(2).par_chunks(&[1, 2, 3], 0, |_, c: &[i32]| c.len());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(4).par_map((0..64usize).collect(), |_, x| {
                if x == 33 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn executor_is_reusable_after_par_map_panic() {
        // A panicking task must not kill pool workers: the same
        // executor keeps producing correct, ordered results afterwards.
        let exec = Executor::new(4);
        for round in 0..3 {
            let bad = std::panic::catch_unwind(AssertUnwindSafe(|| {
                exec.par_map((0..32usize).collect(), |_, x| {
                    if x == 5 {
                        panic!("round {round} poison");
                    }
                    x
                })
            }));
            assert!(bad.is_err());
            let ok = exec.par_map((0..32usize).collect(), |_, x| x + round);
            assert_eq!(ok, (0..32usize).map(|x| x + round).collect::<Vec<_>>());
        }
        assert_eq!(exec.pool_stats().expect("pooled").workers, 3);
    }

    #[test]
    fn clones_share_one_pool() {
        let a = Executor::new(3);
        let b = a.clone();
        assert!(Arc::ptr_eq(a.pool.as_ref().unwrap(), b.pool.as_ref().unwrap()));
        let out_a = a.par_map((0..40usize).collect(), |_, x| x * 2);
        let out_b = b.par_map((0..40usize).collect(), |_, x| x * 2);
        assert_eq!(out_a, out_b);
        // The sequential executor spawns no pool at all.
        assert!(Executor::sequential().pool.is_none());
        assert!(Executor::sequential().pool_stats().is_none());
    }

    #[test]
    fn shared_executor_hands_out_one_pool() {
        let a = Executor::shared();
        let b = Executor::shared();
        assert_eq!(a.threads(), b.threads());
        match (&a.pool, &b.pool) {
            // Multi-core host (or NGL_THREADS > 1): both handles must
            // point at the same pool.
            (Some(pa), Some(pb)) => assert!(Arc::ptr_eq(pa, pb)),
            // NGL_THREADS=1: the shared executor is the sequential one.
            (None, None) => {}
            _ => panic!("shared executor clones disagree on pooling"),
        }
        let out = a.par_map((0..16usize).collect(), |_, x| x + 1);
        assert_eq!(out, (1..17usize).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_workloads_do_not_serialize_items_behind_one_ticket() {
        // One slow item next to many fast ones: the atomic-counter
        // schedule still runs every item exactly once with results in
        // order, whichever workers show up.
        let exec = Executor::new(4);
        let count = AtomicUsize::new(0);
        let out = exec.par_map((0..64usize).collect(), |_, x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
        assert_eq!(out, (0..64usize).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_isolates_panics_per_task() {
        for threads in [1, 4] {
            let out = Executor::new(threads).try_par_map((0..64usize).collect(), |_, x| {
                if x % 13 == 0 {
                    panic!("poison {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 64);
            for (i, r) in out.iter().enumerate() {
                if i % 13 == 0 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, i);
                    assert_eq!(e.message, format!("poison {i}"));
                } else {
                    assert_eq!(*r, Ok(i * 2));
                }
            }
        }
    }

    #[test]
    fn try_par_map_matches_sequential_exactly() {
        let f = |_: usize, x: usize| {
            if x == 7 || x == 21 {
                panic!("bad item");
            }
            x + 1
        };
        let seq = Executor::sequential().try_par_map((0..40usize).collect(), f);
        let par = Executor::new(4).try_par_map((0..40usize).collect(), f);
        assert_eq!(seq, par);
    }

    #[test]
    fn try_par_map_described_attaches_payload_summary() {
        let items: Vec<String> = vec!["ok".into(), "explode".into(), "fine".into()];
        let out = Executor::new(2).try_par_map_described(
            items,
            |s: &String| format!("tweet[{s}]"),
            |_, s| {
                if s == "explode" {
                    panic!("kaboom");
                }
                s.len()
            },
        );
        assert_eq!(out[0], Ok(2));
        assert_eq!(out[2], Ok(4));
        let e = out[1].as_ref().unwrap_err();
        assert_eq!(e.payload, "tweet[explode]");
        assert_eq!(e.message, "kaboom");
        assert!(e.to_string().contains("task #1"));
        assert!(e.to_string().contains("tweet[explode]"));
    }

    #[test]
    fn try_par_map_survives_panicking_describe() {
        let out = Executor::new(2).try_par_map_described(
            vec![1usize, 2, 3],
            |x: &usize| {
                if *x == 2 {
                    panic!("describe bad");
                }
                x.to_string()
            },
            |_, x| {
                if x == 2 {
                    panic!("task bad");
                }
                x
            },
        );
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[2], Ok(3));
        let e = out[1].as_ref().unwrap_err();
        assert_eq!(e.payload, "<payload summary unavailable>");
        assert_eq!(e.message, "task bad");
    }

    #[test]
    fn try_par_map_all_ok_round_trips() {
        let out = Executor::new(3).try_par_map((0..50usize).collect(), |_, x| x * x);
        let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..50usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn from_env_parses_thread_count() {
        // Touching the process environment is inherently racy between
        // tests; this is the only test in the crate that does so.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Executor::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(Executor::from_env().threads(), available_parallelism());
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(Executor::from_env().threads(), available_parallelism());
        std::env::remove_var(THREADS_ENV);
        assert_eq!(Executor::from_env().threads(), available_parallelism());
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let exec = Executor::new(2);
        let inner = Executor::new(2);
        let out = exec.par_map((0..8usize).collect(), |_, x| {
            inner.par_map((0..4usize).collect(), |_, y| x * y).iter().sum::<usize>()
        });
        assert_eq!(out, (0..8usize).map(|x| x * 6).collect::<Vec<_>>());
    }

    #[test]
    fn nested_par_map_on_shared_pool_does_not_deadlock() {
        // Inner calls submit against the *same* saturated pool; caller
        // participation keeps them draining even if no worker is free.
        let exec = Executor::new(2);
        let inner = exec.clone();
        let out = exec.par_map((0..8usize).collect(), |_, x| {
            inner.par_map((0..4usize).collect(), |_, y| x * y).iter().sum::<usize>()
        });
        assert_eq!(out, (0..8usize).map(|x| x * 6).collect::<Vec<_>>());
    }
}
