//! Deterministic, seedable fault-injection planning for stress-testing
//! pipelines built on the executor.
//!
//! A [`FaultPlan`] is a pure value — a map from input index to
//! [`FaultKind`] — constructed either explicitly or from a seed. It is
//! passed *into* the code under test (no globals, no clocks), so a
//! faulty run is exactly reproducible across reruns and across worker
//! counts. The harness that owns the input stream decides how each
//! kind manifests (e.g. replacing a token with [`PANIC_TOKEN`] so a
//! test tagger panics, or with [`NAN_TOKEN`] so it emits non-finite
//! embeddings); this module only decides *where* faults land.

use std::collections::BTreeMap;

/// Sentinel token a harness can splice into a tweet so that a
/// fault-aware tagger panics on it (simulating a poison input that
/// crashes the local encoder).
pub const PANIC_TOKEN: &str = "__ngl_fault_panic__";

/// Sentinel token a harness can splice into a tweet so that a
/// fault-aware tagger emits NaN/Inf embeddings for it.
pub const NAN_TOKEN: &str = "__ngl_fault_nan__";

/// The kinds of stream-level faults the harness knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The encoding task for this tweet panics ([`PANIC_TOKEN`]).
    TaskPanic,
    /// The encoder emits non-finite embeddings for this tweet
    /// ([`NAN_TOKEN`]).
    NanEmbedding,
    /// The tweet arrives with no tokens at all.
    EmptyTweet,
    /// The tweet arrives with an absurdly long token list.
    OversizeTweet,
    /// The tweet re-uses an already-seen tweet id.
    DuplicateId,
}

impl FaultKind {
    /// Every kind, in a fixed order (used by seeded plan generation).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TaskPanic,
        FaultKind::NanEmbedding,
        FaultKind::EmptyTweet,
        FaultKind::OversizeTweet,
        FaultKind::DuplicateId,
    ];
}

/// A deterministic assignment of faults to input indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion of one fault at `index` (replacing any
    /// fault already planned there).
    pub fn with_fault(mut self, index: usize, kind: FaultKind) -> Self {
        self.faults.insert(index, kind);
        self
    }

    /// A pseudo-random plan over `n_items` inputs with (up to)
    /// `n_faults` distinct faulty indices, fully determined by `seed`.
    /// At most one fault lands on any index; when `n_faults >=
    /// n_items` every index becomes faulty.
    pub fn seeded(seed: u64, n_items: usize, n_faults: usize) -> Self {
        let mut plan = Self::new();
        if n_items == 0 {
            return plan;
        }
        let mut rng = SplitMix64::new(seed);
        let target = n_faults.min(n_items);
        while plan.faults.len() < target {
            let index = (rng.next_u64() % n_items as u64) as usize;
            let kind = FaultKind::ALL[(rng.next_u64() % FaultKind::ALL.len() as u64) as usize];
            plan.faults.entry(index).or_insert(kind);
        }
        plan
    }

    /// The fault planned at `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        self.faults.get(&index).copied()
    }

    /// All planned faults in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultKind)> + '_ {
        self.faults.iter().map(|(&i, &k)| (i, k))
    }

    /// Ascending indices of every planned fault of `kind`.
    pub fn indices_of(&self, kind: FaultKind) -> Vec<usize> {
        self.iter().filter(|&(_, k)| k == kind).map(|(i, _)| i).collect()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// SplitMix64 — a tiny, high-quality, dependency-free PRNG. Public so
/// that test harnesses can derive reproducible streams (inputs, split
/// points, retention budgets) from a seed without pulling in an
/// external crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator with the given seed; equal seeds produce equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A pseudo-random value in `0..bound` (`bound` must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 100, 10);
        let b = FaultPlan::seeded(42, 100, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|(i, _)| i < 100));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 1000, 20);
        let b = FaultPlan::seeded(2, 1000, 20);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_plan_caps_at_item_count() {
        let plan = FaultPlan::seeded(7, 3, 50);
        assert_eq!(plan.len(), 3);
        let empty = FaultPlan::seeded(7, 0, 50);
        assert!(empty.is_empty());
    }

    #[test]
    fn explicit_plan_lookup_and_filtering() {
        let plan = FaultPlan::new()
            .with_fault(2, FaultKind::TaskPanic)
            .with_fault(5, FaultKind::EmptyTweet)
            .with_fault(9, FaultKind::TaskPanic);
        assert_eq!(plan.fault_at(2), Some(FaultKind::TaskPanic));
        assert_eq!(plan.fault_at(3), None);
        assert_eq!(plan.indices_of(FaultKind::TaskPanic), vec![2, 9]);
        assert_eq!(plan.indices_of(FaultKind::DuplicateId), Vec::<usize>::new());
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Not all equal (sanity, not a statistical test).
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(c.next_below(7) < 7);
        }
    }
}
