//! Deterministic, seedable fault-injection planning for stress-testing
//! pipelines built on the executor.
//!
//! A [`FaultPlan`] is a pure value — a map from input index to
//! [`FaultKind`] — constructed either explicitly or from a seed. It is
//! passed *into* the code under test (no globals, no clocks), so a
//! faulty run is exactly reproducible across reruns and across worker
//! counts. The harness that owns the input stream decides how each
//! kind manifests (e.g. replacing a token with [`PANIC_TOKEN`] so a
//! test tagger panics, or with [`NAN_TOKEN`] so it emits non-finite
//! embeddings); this module only decides *where* faults land.

use std::collections::BTreeMap;

/// Sentinel token a harness can splice into a tweet so that a
/// fault-aware tagger panics on it (simulating a poison input that
/// crashes the local encoder).
pub const PANIC_TOKEN: &str = "__ngl_fault_panic__";

/// Sentinel token a harness can splice into a tweet so that a
/// fault-aware tagger emits NaN/Inf embeddings for it.
pub const NAN_TOKEN: &str = "__ngl_fault_nan__";

/// The kinds of stream-level faults the harness knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The encoding task for this tweet panics ([`PANIC_TOKEN`]).
    TaskPanic,
    /// The encoder emits non-finite embeddings for this tweet
    /// ([`NAN_TOKEN`]).
    NanEmbedding,
    /// The tweet arrives with no tokens at all.
    EmptyTweet,
    /// The tweet arrives with an absurdly long token list.
    OversizeTweet,
    /// The tweet re-uses an already-seen tweet id.
    DuplicateId,
}

impl FaultKind {
    /// Every kind, in a fixed order (used by seeded plan generation).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TaskPanic,
        FaultKind::NanEmbedding,
        FaultKind::EmptyTweet,
        FaultKind::OversizeTweet,
        FaultKind::DuplicateId,
    ];
}

/// A deterministic assignment of faults to input indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion of one fault at `index` (replacing any
    /// fault already planned there).
    pub fn with_fault(mut self, index: usize, kind: FaultKind) -> Self {
        self.faults.insert(index, kind);
        self
    }

    /// A pseudo-random plan over `n_items` inputs with (up to)
    /// `n_faults` distinct faulty indices, fully determined by `seed`.
    /// At most one fault lands on any index; when `n_faults >=
    /// n_items` every index becomes faulty.
    pub fn seeded(seed: u64, n_items: usize, n_faults: usize) -> Self {
        let mut plan = Self::new();
        if n_items == 0 {
            return plan;
        }
        let mut rng = SplitMix64::new(seed);
        let target = n_faults.min(n_items);
        while plan.faults.len() < target {
            let index = (rng.next_u64() % n_items as u64) as usize;
            let kind = FaultKind::ALL[(rng.next_u64() % FaultKind::ALL.len() as u64) as usize];
            plan.faults.entry(index).or_insert(kind);
        }
        plan
    }

    /// The fault planned at `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        self.faults.get(&index).copied()
    }

    /// All planned faults in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultKind)> + '_ {
        self.faults.iter().map(|(&i, &k)| (i, k))
    }

    /// Ascending indices of every planned fault of `kind`.
    pub fn indices_of(&self, kind: FaultKind) -> Vec<usize> {
        self.iter().filter(|&(_, k)| k == kind).map(|(i, _)| i).collect()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The storage operations an IO fault schedule can target. Mirrors the
/// `StoreIo` trait in `ngl-store`; kept here so fault *planning* stays
/// in the same crate as [`FaultPlan`] while the IO layer that consumes
/// the plan lives with the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoOp {
    /// Reading a whole file or a positional span.
    Read,
    /// Appending or overwriting file bytes.
    Write,
    /// Flushing file contents to stable storage.
    Sync,
    /// Atomically renaming a file (snapshot publication).
    Rename,
    /// Removing a file (compaction, pruning).
    Remove,
}

impl IoOp {
    /// Every op, in a fixed order (used by seeded plan generation).
    pub const ALL: [IoOp; 5] = [IoOp::Read, IoOp::Write, IoOp::Sync, IoOp::Rename, IoOp::Remove];
}

/// Coarse classification of store paths, so a fault schedule can say
/// "the 3rd write to *any* WAL segment" without hard-coding segment
/// file names (which shift as the log rotates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoPathClass {
    /// WAL segment files (`wal-*.log`).
    Wal,
    /// Snapshot files, including in-flight temporaries (`snap-*`).
    Snapshot,
    /// The cold-surface spill file.
    Spill,
    /// Model fingerprint metadata.
    Meta,
    /// Anything else (directories, unknown files).
    Other,
}

impl IoPathClass {
    /// The classes seeded plans draw faults from. `Meta` is excluded:
    /// the fingerprint file is written once at open, before any fault
    /// schedule meaningfully applies, and `Other` is a catch-all.
    pub const FAULTABLE: [IoPathClass; 3] =
        [IoPathClass::Wal, IoPathClass::Snapshot, IoPathClass::Spill];
}

/// The kinds of IO faults a chaos IO layer knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// A transient failure (EINTR-style): the op fails before touching
    /// the file; an immediate retry may succeed.
    Transient,
    /// Disk full (ENOSPC) for `span` consecutive calls of the matched
    /// (op, class) pair, starting at the scheduled index.
    NoSpace { span: u32 },
    /// A torn write: only `keep_pct`% of the buffer reaches the file
    /// before the op fails. Models a partial write that a crash (or a
    /// lying filesystem) leaves behind; never retried transparently.
    TornWrite { keep_pct: u8 },
    /// fsync reports failure after data may or may not have reached
    /// stable storage.
    SyncFail,
}

/// One scheduled IO fault: the `index`-th call of `op` against a path
/// of class `class` fails with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// Operation the fault targets.
    pub op: IoOp,
    /// Path class the fault targets.
    pub class: IoPathClass,
    /// Zero-based per-(op, class) call index the fault lands on.
    pub index: u64,
    /// How the matched call fails.
    pub kind: IoFaultKind,
}

/// A deterministic schedule of IO faults keyed by (op, path-class,
/// call-index). Like [`FaultPlan`] it is a pure value passed into the
/// code under test — no globals — so a chaos run is exactly
/// reproducible from its seed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    faults: BTreeMap<(IoOp, IoPathClass, u64), IoFaultKind>,
}

impl IoFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion of one fault (replacing any fault
    /// already planned at the same (op, class, index) key).
    pub fn with_fault(mut self, fault: IoFault) -> Self {
        self.faults.insert((fault.op, fault.class, fault.index), fault.kind);
        self
    }

    /// A pseudo-random schedule of (up to) `n_faults` IO faults, fully
    /// determined by `seed`. Faults land on WAL/snapshot/spill paths at
    /// per-(op, class) call indices in `0..index_bound`, with kinds
    /// matched to ops (torn writes only on writes, sync failures only
    /// on syncs).
    pub fn seeded(seed: u64, n_faults: usize, index_bound: u64) -> Self {
        let mut plan = Self::new();
        if index_bound == 0 {
            return plan;
        }
        let mut rng = SplitMix64::new(seed ^ 0x10_57_0A_05_FA_17_5Eu64);
        // Bounded attempts so a tiny index space cannot loop forever.
        let mut attempts = 0usize;
        while plan.faults.len() < n_faults && attempts < n_faults * 16 + 64 {
            attempts += 1;
            let op = IoOp::ALL[rng.next_below(IoOp::ALL.len() as u64) as usize];
            let class =
                IoPathClass::FAULTABLE[rng.next_below(IoPathClass::FAULTABLE.len() as u64) as usize];
            let index = rng.next_below(index_bound);
            let kind = match (op, rng.next_below(4)) {
                (IoOp::Sync, 0 | 1) => IoFaultKind::SyncFail,
                (IoOp::Write, 0) => IoFaultKind::TornWrite {
                    keep_pct: (rng.next_below(100)) as u8,
                },
                (_, 1) => IoFaultKind::NoSpace {
                    span: 1 + rng.next_below(3) as u32,
                },
                _ => IoFaultKind::Transient,
            };
            plan.faults.entry((op, class, index)).or_insert(kind);
        }
        plan
    }

    /// The fault scheduled for the `index`-th call of `op` on `class`,
    /// if any. `NoSpace { span }` faults match their whole span:
    /// indices `start..start + span`.
    pub fn fault_at(&self, op: IoOp, class: IoPathClass, index: u64) -> Option<IoFaultKind> {
        if let Some(&kind) = self.faults.get(&(op, class, index)) {
            return Some(kind);
        }
        // Walk earlier NoSpace faults whose span covers `index`.
        self.faults
            .range((op, class, 0)..(op, class, index))
            .rev()
            .find_map(|(&(_, _, start), &kind)| match kind {
                IoFaultKind::NoSpace { span } if index < start + span as u64 => Some(kind),
                _ => None,
            })
    }

    /// All planned faults in key order.
    pub fn iter(&self) -> impl Iterator<Item = IoFault> + '_ {
        self.faults.iter().map(|(&(op, class, index), &kind)| IoFault { op, class, index, kind })
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// SplitMix64 — a tiny, high-quality, dependency-free PRNG. Public so
/// that test harnesses can derive reproducible streams (inputs, split
/// points, retention budgets) from a seed without pulling in an
/// external crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator with the given seed; equal seeds produce equal
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A pseudo-random value in `0..bound` (`bound` must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 100, 10);
        let b = FaultPlan::seeded(42, 100, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|(i, _)| i < 100));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 1000, 20);
        let b = FaultPlan::seeded(2, 1000, 20);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_plan_caps_at_item_count() {
        let plan = FaultPlan::seeded(7, 3, 50);
        assert_eq!(plan.len(), 3);
        let empty = FaultPlan::seeded(7, 0, 50);
        assert!(empty.is_empty());
    }

    #[test]
    fn explicit_plan_lookup_and_filtering() {
        let plan = FaultPlan::new()
            .with_fault(2, FaultKind::TaskPanic)
            .with_fault(5, FaultKind::EmptyTweet)
            .with_fault(9, FaultKind::TaskPanic);
        assert_eq!(plan.fault_at(2), Some(FaultKind::TaskPanic));
        assert_eq!(plan.fault_at(3), None);
        assert_eq!(plan.indices_of(FaultKind::TaskPanic), vec![2, 9]);
        assert_eq!(plan.indices_of(FaultKind::DuplicateId), Vec::<usize>::new());
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn seeded_io_plans_are_reproducible_and_kind_matched() {
        let a = IoFaultPlan::seeded(42, 12, 32);
        let b = IoFaultPlan::seeded(42, 12, 32);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for fault in a.iter() {
            assert!(fault.index < 32);
            match fault.kind {
                IoFaultKind::TornWrite { .. } => assert_eq!(fault.op, IoOp::Write),
                IoFaultKind::SyncFail => assert_eq!(fault.op, IoOp::Sync),
                IoFaultKind::Transient | IoFaultKind::NoSpace { .. } => {}
            }
        }
        assert_ne!(a, IoFaultPlan::seeded(43, 12, 32));
    }

    #[test]
    fn io_plan_nospace_spans_cover_following_indices() {
        let plan = IoFaultPlan::new().with_fault(IoFault {
            op: IoOp::Write,
            class: IoPathClass::Wal,
            index: 5,
            kind: IoFaultKind::NoSpace { span: 3 },
        });
        assert_eq!(plan.fault_at(IoOp::Write, IoPathClass::Wal, 4), None);
        for i in 5..8 {
            assert_eq!(
                plan.fault_at(IoOp::Write, IoPathClass::Wal, i),
                Some(IoFaultKind::NoSpace { span: 3 })
            );
        }
        assert_eq!(plan.fault_at(IoOp::Write, IoPathClass::Wal, 8), None);
        assert_eq!(plan.fault_at(IoOp::Write, IoPathClass::Spill, 5), None);
        assert_eq!(plan.fault_at(IoOp::Sync, IoPathClass::Wal, 5), None);
    }

    #[test]
    fn io_plan_point_faults_do_not_bleed() {
        let plan = IoFaultPlan::new().with_fault(IoFault {
            op: IoOp::Sync,
            class: IoPathClass::Snapshot,
            index: 2,
            kind: IoFaultKind::SyncFail,
        });
        assert_eq!(plan.fault_at(IoOp::Sync, IoPathClass::Snapshot, 1), None);
        assert_eq!(
            plan.fault_at(IoOp::Sync, IoPathClass::Snapshot, 2),
            Some(IoFaultKind::SyncFail)
        );
        assert_eq!(plan.fault_at(IoOp::Sync, IoPathClass::Snapshot, 3), None);
    }

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Not all equal (sanity, not a statistical test).
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(c.next_below(7) < 7);
        }
    }
}
