//! Persistent work-stealing worker pool backing [`crate::Executor`].
//!
//! ## Lifecycle
//!
//! ```text
//!   Executor::new(T)                        par_map(items, f)
//!        │                                        │
//!        ├─ spawns T-1 workers (once) ──┐         ├─ issues min(T, n)-1 tickets → injector
//!        │                              ▼         ├─ runs the pull-loop itself
//!        │                      ┌── parked ──┐    ├─ cancels still-queued tickets
//!        │                      │  (condvar) │    └─ waits: done == issued
//!        │   notify on submit ─►│            │
//!        │                      └── working ─┘── own deque → injector → steal → park
//!        ▼
//!   drop(last Executor clone) → shutdown flag + notify_all → join workers
//! ```
//!
//! Workers are OS threads spawned once when the owning [`crate::Executor`]
//! is created — `threads - 1` of them, because the caller of every
//! `par_map` participates as the final worker. Idle workers park on a
//! condvar; ticket submission unparks them. The pool dies when the last
//! `Executor` clone drops.
//!
//! ## Scheduling
//!
//! A `par_map` call packages its pull-loop as a lifetime-erased job and
//! issues one *ticket* per invited worker into the shared injector
//! queue. A worker that drains its own deque pops the injector — taking
//! one ticket to run and moving a small batch of follow-ups into its
//! local deque so siblings have something to steal — and otherwise
//! steals from a sibling deque (owners pop the front, thieves pop the
//! back). Items *inside* a job are scheduled dynamically off a shared
//! atomic counter, so tickets are pure "help requests": any subset of
//! the invited workers may show up, late or never, without affecting
//! which items run or the order results assemble in. That is the whole
//! determinism argument: item → result-slot assignment is fixed by
//! input index, and ticket scheduling only decides who computes it.
//!
//! ## Soundness of the lifetime erasure
//!
//! The job closure borrows the caller's stack frame (item slots, result
//! slots, the shared counter), so [`Pool::run`] must prove the borrow
//! outlives every access:
//!
//! 1. the caller participates in the job itself, so it cannot return
//!    before the item counter is exhausted;
//! 2. after its own pull-loop exits it **cancels** every still-queued
//!    ticket of this call, removing them from the injector and from all
//!    local deques (a popped-but-unstarted ticket is fine: the job's
//!    first counter fetch sees the range exhausted and returns);
//! 3. it then blocks until every picked-up ticket has finished — a
//!    worker drops its clone of the erased job **before** signalling
//!    completion, so when the wait returns the caller holds the last
//!    reference and the erased closure never outlives the frame it
//!    borrows.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// How many follow-up tickets a worker moves from the injector into its
/// own deque per pop, seeding the steal path.
const INJECTOR_GRAB: usize = 2;

/// A job body with its borrow lifetime erased; see the module docs for
/// why this is sound. Only [`Pool::run`] constructs these.
type Job = Box<dyn Fn() + Send + Sync + 'static>;

struct JobBody {
    f: Job,
}

/// Per-call completion accounting shared by every ticket of one
/// [`Pool::run`]. Fully `'static` (no borrows), so it may outlive the
/// call without hazard.
struct CallSync {
    /// Tickets issued for this call (set once, before submission).
    issued: usize,
    /// Tickets finished (ran to completion) or cancelled.
    done: Mutex<usize>,
    cv: Condvar,
}

/// Locks ignoring poison, like the `Drop` path always has. Job bodies
/// never unwind out of a ticket (`Ticket::run` catches), so poison can
/// only arise from a panic in pool bookkeeping itself; the protected
/// data (counters, deques, the shutdown flag) is consistent at every
/// lock boundary, and continuing beats deadlocking every caller.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CallSync {
    fn new(issued: usize) -> Self {
        Self { issued, done: Mutex::new(0), cv: Condvar::new() }
    }

    /// Marks `k` tickets of this call finished, waking the caller when
    /// the last one lands.
    fn finish(&self, k: usize) {
        let mut d = lock_ignore_poison(&self.done);
        *d += k;
        if *d >= self.issued {
            self.cv.notify_all();
        }
    }

    /// Blocks until every issued ticket has finished or been cancelled.
    fn wait(&self) {
        let mut d = lock_ignore_poison(&self.done);
        while *d < self.issued {
            d = self.cv.wait(d).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// One invitation for one worker to join a call's pull-loop.
struct Ticket {
    body: Arc<JobBody>,
    sync: Arc<CallSync>,
}

impl Ticket {
    /// Runs the job body, releases the erased closure, then signals.
    /// The drop-before-finish order is load-bearing: it guarantees the
    /// caller's `Arc<JobBody>` is the last one standing when its wait
    /// returns (module docs, point 3).
    fn run(self) {
        let Ticket { body, sync } = self;
        // Job bodies never unwind (the Executor catches item panics
        // inside the pull-loop), but a worker must survive even a
        // broken invariant rather than deadlock the pool.
        let _ = catch_unwind(AssertUnwindSafe(|| (body.f)()));
        drop(body);
        sync.finish(1);
    }
}

struct State {
    injector: VecDeque<Ticket>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    /// Per-worker deques. Lock order: `state` before any local, never a
    /// local before `state`, never two locals at once.
    locals: Vec<Mutex<VecDeque<Ticket>>>,
    steals: AtomicUsize,
    parks: AtomicUsize,
    tickets_run: AtomicUsize,
}

impl Shared {
    fn local(&self, i: usize) -> MutexGuard<'_, VecDeque<Ticket>> {
        lock_ignore_poison(&self.locals[i])
    }

    /// True when any worker deque holds a ticket. Called with the state
    /// lock held (the park condition), which is also the lock every
    /// deque *depositor* holds — so a parking worker either sees the
    /// deposit or is already in `wait` when the depositor notifies.
    fn any_local_pending(&self) -> bool {
        self.locals.iter().any(|q| !lock_ignore_poison(q).is_empty())
    }
}

/// Point-in-time scheduler counters, exposed for tests and benches via
/// [`crate::Executor::pool_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// OS worker threads owned by the pool (callers are extra).
    pub workers: usize,
    /// Tickets taken from a sibling's deque instead of own/injector.
    pub steals: usize,
    /// Times a worker went to sleep on the condvar.
    pub parks: usize,
    /// Tickets a pool worker actually ran (cancelled ones excluded).
    pub tickets_run: usize,
}

/// The persistent pool. Created by [`crate::Executor::new`] and shared
/// between clones through an `Arc`; see the module docs for the
/// scheduling and soundness story.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` parked OS threads. Spawn failures degrade to a
    /// smaller pool rather than an error: callers always participate in
    /// their own jobs, so even zero workers still makes progress.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { injector: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicUsize::new(0),
            parks: AtomicUsize::new(0),
            tickets_run: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .filter_map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ngl-worker-{i}"))
                    .spawn(move || worker_loop(sh, i))
                    .ok()
            })
            .collect();
        Self { shared, handles }
    }

    /// Runs `job` on the calling thread plus up to `invite` pool
    /// workers, returning once the job is complete on every thread that
    /// picked it up. `job` must be a pull-loop over shared state: safe
    /// to execute concurrently from several threads and idempotent once
    /// its work source is exhausted.
    pub fn run(&self, invite: usize, job: &(dyn Fn() + Send + Sync)) {
        let invite = invite.min(self.handles.len().max(self.shared.locals.len()));
        if invite == 0 {
            job();
            return;
        }
        let sync = Arc::new(CallSync::new(invite));
        let boxed: Box<dyn Fn() + Send + Sync + '_> = Box::new(job);
        // SAFETY: only the borrow lifetime is erased (`Send + Sync` are
        // proven on the un-erased type above), and the cancel + wait
        // protocol below keeps every access and the final drop of the
        // closure inside the current stack frame — see the module docs.
        let body = Arc::new(JobBody { f: unsafe { erase_job(boxed) } });
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            for _ in 0..invite {
                st.injector
                    .push_back(Ticket { body: Arc::clone(&body), sync: Arc::clone(&sync) });
            }
            self.shared.cv.notify_all();
        }
        // The caller is always a worker for its own call; with the
        // atomic-counter pull-loop this also makes nested `par_map`
        // deadlock-free (a saturated pool degrades to caller-only).
        // Catching here keeps the cancel + wait protocol below running
        // even if the job body unwinds on the calling thread, so the
        // erased closure can never leak out of this frame.
        let caller_panic = catch_unwind(AssertUnwindSafe(job)).err();
        // Invitations nobody honored must not outlive this frame.
        let mut cancelled = 0usize;
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            let before = st.injector.len();
            st.injector.retain(|t| !Arc::ptr_eq(&t.body, &body));
            cancelled += before - st.injector.len();
        }
        for i in 0..self.shared.locals.len() {
            let mut q = self.shared.local(i);
            let before = q.len();
            q.retain(|t| !Arc::ptr_eq(&t.body, &body));
            cancelled += before - q.len();
        }
        if cancelled > 0 {
            sync.finish(cancelled);
        }
        sync.wait();
        debug_assert_eq!(Arc::strong_count(&body), 1, "erased job escaped its call");
        if let Some(p) = caller_panic {
            std::panic::resume_unwind(p);
        }
    }

    /// Snapshot of the scheduler counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.handles.len(),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            tickets_run: self.shared.tickets_run.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.handles.len()).finish()
    }
}

/// # Safety
///
/// The returned `'static` closure is a lie: the borrow is only erased,
/// not extended. The caller must keep the original closure alive — and
/// drop every clone of the erased one — before its own frame returns.
/// [`Pool::run`]'s cancel + wait protocol is the proof obligation.
unsafe fn erase_job(f: Box<dyn Fn() + Send + Sync + '_>) -> Job {
    // SAFETY: only the borrow lifetime differs between the source and
    // target types; wide-pointer layout is identical. Liveness is the
    // caller's contract (see above).
    unsafe { std::mem::transmute(f) }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(t) = find_work(&shared, me) {
            shared.tickets_run.fetch_add(1, Ordering::Relaxed);
            t.run();
            continue;
        }
        let st = lock_ignore_poison(&shared.state);
        if st.shutdown {
            return;
        }
        if st.injector.is_empty() && !shared.any_local_pending() {
            // Full park condition checked under the state lock — every
            // deposit (submit or injector-grab) happens under the same
            // lock and notifies, so a wakeup cannot be lost.
            shared.parks.fetch_add(1, Ordering::Relaxed);
            drop(shared.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner));
        }
    }
}

fn find_work(shared: &Shared, me: usize) -> Option<Ticket> {
    if let Some(t) = shared.local(me).pop_front() {
        return Some(t);
    }
    {
        let mut st = lock_ignore_poison(&shared.state);
        if let Some(t) = st.injector.pop_front() {
            // Move a small batch of follow-ups into our deque so parked
            // siblings have something to steal, and wake them for it.
            let grab = st.injector.len().min(INJECTOR_GRAB);
            if grab > 0 {
                let mut mine = shared.local(me);
                // `grab` is bounded by the injector length above, but
                // degrade to a short batch rather than panic if that
                // bookkeeping ever drifts.
                let mut moved = 0usize;
                while moved < grab {
                    match st.injector.pop_front() {
                        Some(t) => {
                            mine.push_back(t);
                            moved += 1;
                        }
                        None => break,
                    }
                }
                drop(mine);
                shared.cv.notify_all();
            }
            return Some(t);
        }
    }
    let w = shared.locals.len();
    for k in 1..w {
        let victim = (me + k) % w;
        if let Some(t) = shared.local(victim).pop_back() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::time::{Duration, Instant};

    fn spin_until(deadline: Duration, cond: impl Fn() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn workers_park_when_idle_and_unpark_on_submit() {
        let pool = Pool::new(2);
        // Freshly spawned workers find nothing and park.
        assert!(
            spin_until(Duration::from_secs(5), || pool.stats().parks >= 2),
            "workers never parked: {:?}",
            pool.stats()
        );
        let before = pool.stats().parks;
        let hits = AtomicUsize::new(0);
        pool.run(2, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) >= 1);
        // Woken workers go back to sleep once the call drains.
        assert!(
            spin_until(Duration::from_secs(5), || pool.stats().parks > before),
            "workers never re-parked: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn sibling_deque_is_stolen_from_under_uneven_load() {
        let pool = Pool::new(2);
        // Deposit both tickets into worker 0's deque under the state
        // lock (the depositor protocol), so worker 1 can only get its
        // ticket by stealing. The barrier forces both workers to hold a
        // ticket at the same time, making the steal mandatory.
        let barrier = Arc::new(Barrier::new(2));
        let sync = Arc::new(CallSync::new(2));
        let job: Job = {
            let barrier = Arc::clone(&barrier);
            Box::new(move || {
                barrier.wait();
            })
        };
        let body = Arc::new(JobBody { f: job });
        {
            let st = pool.shared.state.lock().unwrap();
            let mut q = pool.shared.local(0);
            for _ in 0..2 {
                q.push_back(Ticket { body: Arc::clone(&body), sync: Arc::clone(&sync) });
            }
            drop(q);
            pool.shared.cv.notify_all();
            drop(st);
        }
        sync.wait();
        assert!(pool.stats().steals >= 1, "no steal recorded: {:?}", pool.stats());
        assert_eq!(pool.stats().tickets_run, 2);
    }

    #[test]
    fn cancelled_tickets_do_not_run() {
        let pool = Pool::new(1);
        // Saturate the single worker so a second call's tickets stay
        // queued, then observe the caller finishing the whole range
        // itself with the leftover invitation cancelled.
        let ran = AtomicUsize::new(0);
        pool.run(1, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ran.load(Ordering::Relaxed) >= 1);
        // After the call returns no ticket of it may remain anywhere.
        assert!(pool.shared.state.lock().unwrap().injector.is_empty());
        assert!(!pool.shared.any_local_pending());
    }

    #[test]
    fn pool_survives_panicking_job_body() {
        let pool = Pool::new(2);
        // The caller participates, so its copy of the panicking job
        // unwinds back out of `run` — but only after the cancel + wait
        // protocol has completed, and without killing any worker.
        let unwound =
            catch_unwind(AssertUnwindSafe(|| pool.run(2, &|| panic!("invariant broke"))));
        assert!(unwound.is_err());
        // Workers are still alive and serviceable.
        let hits = AtomicUsize::new(0);
        pool.run(2, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) >= 1);
        assert_eq!(pool.stats().workers, 2);
    }
}
