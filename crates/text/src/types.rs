//! The entity type system.
//!
//! The paper limits type coverage to four common entity types (§III):
//! Person, Location, Organization and Miscellaneous (WNUT17's Product,
//! Creative-work and Group are folded into Miscellaneous). The Entity
//! Classifier additionally uses an L+1-th *non-entity* class (§V-D);
//! that class is represented here by `Option<EntityType>::None` where it
//! matters, with [`EntityType::class_index`] providing the stable
//! classifier indices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the L = 4 preset entity types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityType {
    /// People: politicians, athletes, artists ("beshear", "trump").
    Person,
    /// Geographic locations ("italy", "US", "canada").
    Location,
    /// Organizations ("NHS", "Justice Department").
    Organization,
    /// Everything else the paper groups here: diseases, products,
    /// creative works, groups ("coronavirus", "Fireflies").
    Miscellaneous,
}

impl EntityType {
    /// The number of preset entity types, `L`.
    pub const COUNT: usize = 4;

    /// All types in classifier-index order.
    pub const ALL: [EntityType; Self::COUNT] = [
        EntityType::Person,
        EntityType::Location,
        EntityType::Organization,
        EntityType::Miscellaneous,
    ];

    /// Stable dense index in `0..L`.
    pub fn index(self) -> usize {
        match self {
            EntityType::Person => 0,
            EntityType::Location => 1,
            EntityType::Organization => 2,
            EntityType::Miscellaneous => 3,
        }
    }

    /// Inverse of [`Self::index`].
    ///
    /// # Panics
    /// Panics when `i >= EntityType::COUNT`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Classifier class index over L+1 classes: entity types map to
    /// `0..L`, the non-entity class is `L` (see [`non_entity_class`]).
    pub fn class_index(ty: Option<EntityType>) -> usize {
        match ty {
            Some(t) => t.index(),
            None => Self::COUNT,
        }
    }

    /// Inverse of [`Self::class_index`].
    pub fn from_class_index(i: usize) -> Option<EntityType> {
        if i < Self::COUNT {
            Some(Self::from_index(i))
        } else {
            None
        }
    }

    /// Conventional short code ("PER", "LOC", "ORG", "MISC").
    pub fn code(self) -> &'static str {
        match self {
            EntityType::Person => "PER",
            EntityType::Location => "LOC",
            EntityType::Organization => "ORG",
            EntityType::Miscellaneous => "MISC",
        }
    }

    /// Parses the short code, case-insensitively.
    pub fn from_code(code: &str) -> Option<Self> {
        match code.to_ascii_uppercase().as_str() {
            "PER" | "PERSON" => Some(EntityType::Person),
            "LOC" | "LOCATION" => Some(EntityType::Location),
            "ORG" | "ORGANIZATION" => Some(EntityType::Organization),
            "MISC" | "MISCELLANEOUS" => Some(EntityType::Miscellaneous),
            _ => None,
        }
    }
}

/// The classifier index of the non-entity class (`L`).
pub const fn non_entity_class() -> usize {
    EntityType::COUNT
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for ty in EntityType::ALL {
            assert_eq!(EntityType::from_index(ty.index()), ty);
        }
    }

    #[test]
    fn class_index_covers_l_plus_one() {
        assert_eq!(EntityType::class_index(Some(EntityType::Person)), 0);
        assert_eq!(EntityType::class_index(None), non_entity_class());
        assert_eq!(EntityType::from_class_index(non_entity_class()), None);
        assert_eq!(
            EntityType::from_class_index(2),
            Some(EntityType::Organization)
        );
    }

    #[test]
    fn code_round_trips() {
        for ty in EntityType::ALL {
            assert_eq!(EntityType::from_code(ty.code()), Some(ty));
            assert_eq!(EntityType::from_code(&ty.code().to_lowercase()), Some(ty));
        }
        assert_eq!(EntityType::from_code("bogus"), None);
    }

    #[test]
    fn display_uses_codes() {
        assert_eq!(EntityType::Miscellaneous.to_string(), "MISC");
    }
}
