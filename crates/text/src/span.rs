//! Typed entity spans over token sequences.

use serde::{Deserialize, Serialize};

use crate::types::EntityType;

/// A typed mention span in token coordinates: tokens
/// `start..end` (end exclusive) form one entity mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Span {
    /// Index of the first token of the mention.
    pub start: usize,
    /// One past the last token of the mention.
    pub end: usize,
    /// The entity type of the mention.
    pub ty: EntityType,
}

impl Span {
    /// Creates a span; panics when `start >= end`.
    pub fn new(start: usize, end: usize, ty: EntityType) -> Self {
        assert!(start < end, "empty span {start}..{end}");
        Self { start, end, ty }
    }

    /// Number of tokens covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always false (spans are non-empty by construction); present to
    /// satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether two spans share at least one token.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the spans cover exactly the same tokens (type ignored).
    pub fn same_boundaries(&self, other: &Span) -> bool {
        self.start == other.start && self.end == other.end
    }

    /// Exact match: same boundaries *and* same type — the unit of a
    /// correct NER detection (§VI: "a correct NER detection requires both
    /// EMD and Entity Typing to be handled correctly").
    pub fn matches(&self, other: &Span) -> bool {
        self.same_boundaries(other) && self.ty == other.ty
    }

    /// The surface text of this span over a token-text slice.
    pub fn surface<S: AsRef<str>>(&self, tokens: &[S]) -> String {
        tokens[self.start..self.end]
            .iter()
            .map(|s| s.as_ref())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Removes overlapping spans, keeping longer spans first and, at equal
/// length, earlier spans. Useful when merging predictions from multiple
/// sources.
pub fn resolve_overlaps(mut spans: Vec<Span>) -> Vec<Span> {
    spans.sort_by(|a, b| b.len().cmp(&a.len()).then(a.start.cmp(&b.start)));
    let mut kept: Vec<Span> = Vec::with_capacity(spans.len());
    for s in spans {
        if !kept.iter().any(|k| k.overlaps(&s)) {
            kept.push(s);
        }
    }
    kept.sort_by_key(|s| (s.start, s.end));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EntityType::*;

    #[test]
    fn overlap_detection() {
        let a = Span::new(0, 2, Person);
        let b = Span::new(1, 3, Location);
        let c = Span::new(2, 4, Location);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn matches_requires_type() {
        let a = Span::new(0, 2, Person);
        let b = Span::new(0, 2, Location);
        assert!(a.same_boundaries(&b));
        assert!(!a.matches(&b));
        assert!(a.matches(&a));
    }

    #[test]
    fn surface_joins_tokens() {
        let toks = ["andy", "beshear", "update"];
        let s = Span::new(0, 2, Person);
        assert_eq!(s.surface(&toks), "andy beshear");
    }

    #[test]
    fn resolve_overlaps_prefers_longer() {
        let spans = vec![
            Span::new(0, 1, Person),
            Span::new(0, 2, Person), // longer, wins
            Span::new(3, 4, Location),
        ];
        let kept = resolve_overlaps(spans);
        assert_eq!(kept, vec![Span::new(0, 2, Person), Span::new(3, 4, Location)]);
    }

    #[test]
    #[should_panic(expected = "empty span")]
    fn empty_span_panics() {
        let _ = Span::new(2, 2, Person);
    }
}
