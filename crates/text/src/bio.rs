//! The BIO tagging scheme (Ramshaw & Marcus) used by the Local NER
//! sequence labeller: each token is `O` (outside), `B-<type>` (beginning
//! of a mention) or `I-<type>` (inside a mention). With L = 4 types this
//! gives 2L+1 = 9 tag classes.

use serde::{Deserialize, Serialize};

use crate::span::Span;
use crate::types::EntityType;

/// A BIO token tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BioTag {
    /// Outside any mention.
    O,
    /// First token of a mention of the given type.
    B(EntityType),
    /// Continuation token of a mention of the given type.
    I(EntityType),
}

impl BioTag {
    /// Number of distinct tags: 2L + 1.
    pub const COUNT: usize = 2 * EntityType::COUNT + 1;

    /// Dense index: `O` = 0, `B(t)` = 1 + 2·t, `I(t)` = 2 + 2·t.
    pub fn index(self) -> usize {
        match self {
            BioTag::O => 0,
            BioTag::B(t) => 1 + 2 * t.index(),
            BioTag::I(t) => 2 + 2 * t.index(),
        }
    }

    /// Inverse of [`Self::index`].
    ///
    /// # Panics
    /// Panics when `i >= BioTag::COUNT`.
    pub fn from_index(i: usize) -> Self {
        assert!(i < Self::COUNT, "tag index {i} out of range");
        if i == 0 {
            BioTag::O
        } else {
            let t = EntityType::from_index((i - 1) / 2);
            if (i - 1).is_multiple_of(2) {
                BioTag::B(t)
            } else {
                BioTag::I(t)
            }
        }
    }

    /// The entity type carried by the tag, if any.
    pub fn entity_type(self) -> Option<EntityType> {
        match self {
            BioTag::O => None,
            BioTag::B(t) | BioTag::I(t) => Some(t),
        }
    }

    /// Conventional string form: "O", "B-PER", "I-MISC", …
    pub fn code(self) -> String {
        match self {
            BioTag::O => "O".to_string(),
            BioTag::B(t) => format!("B-{}", t.code()),
            BioTag::I(t) => format!("I-{}", t.code()),
        }
    }

    /// Parses the conventional string form.
    pub fn from_code(code: &str) -> Option<Self> {
        if code.eq_ignore_ascii_case("O") {
            return Some(BioTag::O);
        }
        let (head, ty) = code.split_once('-')?;
        let ty = EntityType::from_code(ty)?;
        match head.to_ascii_uppercase().as_str() {
            "B" => Some(BioTag::B(ty)),
            "I" => Some(BioTag::I(ty)),
            _ => None,
        }
    }
}

/// Encodes typed spans into a BIO tag sequence of length `n_tokens`.
///
/// Overlapping spans are encoded first-come-first-served; callers should
/// resolve overlaps beforehand (see [`crate::span::resolve_overlaps`]).
///
/// # Panics
/// Panics when a span exceeds `n_tokens`.
pub fn encode_bio(n_tokens: usize, spans: &[Span]) -> Vec<BioTag> {
    let mut tags = vec![BioTag::O; n_tokens];
    for s in spans {
        assert!(s.end <= n_tokens, "span {s:?} exceeds {n_tokens} tokens");
        if tags[s.start..s.end].iter().any(|t| *t != BioTag::O) {
            continue; // keep the earlier span
        }
        tags[s.start] = BioTag::B(s.ty);
        for t in tags.iter_mut().take(s.end).skip(s.start + 1) {
            *t = BioTag::I(s.ty);
        }
    }
    tags
}

/// Decodes a BIO tag sequence into typed spans.
///
/// ```
/// use ngl_text::{decode_bio, BioTag, EntityType, Span};
///
/// let tags = [
///     BioTag::O,
///     BioTag::B(EntityType::Person),
///     BioTag::I(EntityType::Person),
///     BioTag::O,
/// ];
/// assert_eq!(decode_bio(&tags), vec![Span::new(1, 3, EntityType::Person)]);
/// ```
///
/// Uses the lenient convention standard in NER evaluation: an `I-` tag
/// that does not continue a mention of the same type starts a new
/// mention (this is exactly how partially extracted entities arise in
/// the paper's error taxonomy, §V "Correction of Partial Extraction").
pub fn decode_bio(tags: &[BioTag]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut open: Option<(usize, EntityType)> = None;
    for (i, tag) in tags.iter().enumerate() {
        match *tag {
            BioTag::O => {
                if let Some((start, ty)) = open.take() {
                    spans.push(Span::new(start, i, ty));
                }
            }
            BioTag::B(ty) => {
                if let Some((start, pty)) = open.take() {
                    spans.push(Span::new(start, i, pty));
                }
                open = Some((i, ty));
            }
            BioTag::I(ty) => match open {
                Some((_, pty)) if pty == ty => {}
                _ => {
                    if let Some((start, pty)) = open.take() {
                        spans.push(Span::new(start, i, pty));
                    }
                    open = Some((i, ty));
                }
            },
        }
    }
    if let Some((start, ty)) = open {
        spans.push(Span::new(start, tags.len(), ty));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EntityType::*;

    #[test]
    fn tag_index_round_trips() {
        for i in 0..BioTag::COUNT {
            assert_eq!(BioTag::from_index(i).index(), i);
        }
    }

    #[test]
    fn encode_then_decode_is_identity() {
        let spans = vec![
            Span::new(0, 2, Person),
            Span::new(3, 4, Location),
            Span::new(5, 8, Organization),
        ];
        let tags = encode_bio(9, &spans);
        assert_eq!(decode_bio(&tags), spans);
    }

    #[test]
    fn adjacent_mentions_of_same_type_stay_separate() {
        let spans = vec![Span::new(0, 1, Person), Span::new(1, 2, Person)];
        let tags = encode_bio(2, &spans);
        assert_eq!(tags, vec![BioTag::B(Person), BioTag::B(Person)]);
        assert_eq!(decode_bio(&tags), spans);
    }

    #[test]
    fn dangling_i_starts_new_mention() {
        let tags = vec![BioTag::O, BioTag::I(Location), BioTag::I(Location)];
        assert_eq!(decode_bio(&tags), vec![Span::new(1, 3, Location)]);
    }

    #[test]
    fn type_switch_inside_mention_splits() {
        let tags = vec![BioTag::B(Person), BioTag::I(Location)];
        assert_eq!(
            decode_bio(&tags),
            vec![Span::new(0, 1, Person), Span::new(1, 2, Location)]
        );
    }

    #[test]
    fn mention_running_to_end_is_closed() {
        let tags = vec![BioTag::O, BioTag::B(Miscellaneous), BioTag::I(Miscellaneous)];
        assert_eq!(decode_bio(&tags), vec![Span::new(1, 3, Miscellaneous)]);
    }

    #[test]
    fn codes_round_trip() {
        for i in 0..BioTag::COUNT {
            let t = BioTag::from_index(i);
            assert_eq!(BioTag::from_code(&t.code()), Some(t));
        }
        assert_eq!(BioTag::from_code("Q-PER"), None);
    }

    #[test]
    fn overlapping_spans_keep_first() {
        let spans = vec![Span::new(0, 2, Person), Span::new(1, 3, Location)];
        let tags = encode_bio(3, &spans);
        assert_eq!(decode_bio(&tags), vec![Span::new(0, 2, Person)]);
    }
}
