//! Orthographic word-shape features.
//!
//! Feature-based NER systems for microblogs (Ritter et al., Aguilar et
//! al.) rely on surface shape cues — capitalization, digits, hashtag
//! markers. The Aguilar-style CRF baseline consumes these features, and
//! the Local NER encoder mixes a compact binary shape vector into its
//! token representation.

use crate::token::{Token, TokenKind};

/// Binary/orthographic features of a single token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordShape {
    /// First character is uppercase, rest not all caps ("Italy").
    pub init_cap: bool,
    /// Every alphabetic character is uppercase ("NHS", "US").
    pub all_caps: bool,
    /// Every alphabetic character is lowercase.
    pub all_lower: bool,
    /// Contains at least one digit ("covid19").
    pub has_digit: bool,
    /// Entirely digits/number punctuation.
    pub is_numeric: bool,
    /// Token is a `#hashtag`.
    pub is_hashtag: bool,
    /// Token is an `@mention`.
    pub is_mention: bool,
    /// Token is a URL.
    pub is_url: bool,
    /// Token is punctuation.
    pub is_punct: bool,
    /// Contains a repeated-letter elongation ("sooooo").
    pub elongated: bool,
    /// Token length is 1.
    pub single_char: bool,
}

/// The number of scalar features [`WordShape::to_features`] produces.
pub const SHAPE_DIM: usize = 11;

impl WordShape {
    /// Extracts the shape of a token.
    pub fn of(token: &Token) -> Self {
        let text = &token.text;
        let alpha: Vec<char> = text.chars().filter(|c| c.is_alphabetic()).collect();
        let has_alpha = !alpha.is_empty();
        let mut elongated = false;
        let mut run = 1;
        let mut prev = '\0';
        for c in text.chars() {
            if c == prev && c.is_alphabetic() {
                run += 1;
                if run >= 3 {
                    elongated = true;
                }
            } else {
                run = 1;
            }
            prev = c;
        }
        Self {
            init_cap: has_alpha
                && text.chars().next().is_some_and(|c| c.is_uppercase())
                && !(alpha.len() > 1 && alpha.iter().all(|c| c.is_uppercase())),
            all_caps: has_alpha && alpha.iter().all(|c| c.is_uppercase()),
            all_lower: has_alpha && alpha.iter().all(|c| c.is_lowercase()),
            has_digit: text.chars().any(|c| c.is_ascii_digit()),
            is_numeric: token.kind == TokenKind::Number,
            is_hashtag: token.kind == TokenKind::Hashtag,
            is_mention: token.kind == TokenKind::Mention,
            is_url: token.kind == TokenKind::Url,
            is_punct: token.kind == TokenKind::Punct,
            elongated,
            single_char: text.chars().count() == 1,
        }
    }

    /// Dense 0/1 feature vector of length [`SHAPE_DIM`].
    pub fn to_features(self) -> [f32; SHAPE_DIM] {
        [
            self.init_cap as u8 as f32,
            self.all_caps as u8 as f32,
            self.all_lower as u8 as f32,
            self.has_digit as u8 as f32,
            self.is_numeric as u8 as f32,
            self.is_hashtag as u8 as f32,
            self.is_mention as u8 as f32,
            self.is_url as u8 as f32,
            self.is_punct as u8 as f32,
            self.elongated as u8 as f32,
            self.single_char as u8 as f32,
        ]
    }
}

/// Compressed shape string à la "Xxxx", "XX", "#xxx", "d,ddd".
///
/// Uppercase → `X`, lowercase → `x`, digit → `d`, other characters kept;
/// runs longer than 2 are collapsed ("Xxxx" not "Xxxxxxxx").
pub fn shape_string(text: &str) -> String {
    let mapped: Vec<char> = text
        .chars()
        .map(|c| {
            if c.is_uppercase() {
                'X'
            } else if c.is_lowercase() {
                'x'
            } else if c.is_ascii_digit() {
                'd'
            } else {
                c
            }
        })
        .collect();
    let mut out = String::new();
    let mut run_char = '\0';
    let mut run_len = 0;
    for c in mapped {
        if c == run_char {
            run_len += 1;
            if run_len <= 2 {
                out.push(c);
            }
        } else {
            run_char = c;
            run_len = 1;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tok(s: &str) -> Token {
        tokenize(s).into_iter().next().expect("token")
    }

    #[test]
    fn init_cap_vs_all_caps() {
        assert!(WordShape::of(&tok("Italy")).init_cap);
        assert!(!WordShape::of(&tok("Italy")).all_caps);
        assert!(WordShape::of(&tok("NHS")).all_caps);
        assert!(!WordShape::of(&tok("NHS")).init_cap);
        assert!(WordShape::of(&tok("covid")).all_lower);
    }

    #[test]
    fn single_uppercase_letter_is_all_caps() {
        let s = WordShape::of(&tok("I"));
        assert!(s.all_caps);
        assert!(s.single_char);
    }

    #[test]
    fn hashtag_and_digit_flags() {
        let s = WordShape::of(&tok("#covid19"));
        assert!(s.is_hashtag);
        assert!(s.has_digit);
    }

    #[test]
    fn elongation_detected() {
        assert!(WordShape::of(&tok("sooooo")).elongated);
        assert!(!WordShape::of(&tok("soon")).elongated);
    }

    #[test]
    fn feature_vector_has_fixed_dim() {
        let f = WordShape::of(&tok("Trump")).to_features();
        assert_eq!(f.len(), SHAPE_DIM);
        assert!(f.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn shape_string_collapses_runs() {
        assert_eq!(shape_string("Coronavirus"), "Xxx");
        assert_eq!(shape_string("COVID-19"), "XX-dd");
        assert_eq!(shape_string("us"), "xx");
    }
}
