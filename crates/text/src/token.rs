//! Tweet-aware tokenization.
//!
//! Microblog text mixes ordinary words with platform artifacts —
//! hashtags, @-mentions, URLs, emoticons, elongated words. The Local NER
//! encoder and the mention-extraction scan both operate on this token
//! stream, so tokenization must keep those artifacts intact (a split
//! "#covid" would never match a CTrie path).

use serde::{Deserialize, Serialize};

/// Classification of a token's surface category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Ordinary word (letters, possibly apostrophes).
    Word,
    /// `#hashtag`.
    Hashtag,
    /// `@mention`.
    Mention,
    /// `http(s)://…` or `www.…`.
    Url,
    /// Digits (possibly with separators): "2020", "3.5", "1,000".
    Number,
    /// Punctuation run.
    Punct,
    /// Emoticon like `:)` / `:-(` (kept whole).
    Emoticon,
}

/// A single token with its character offset into the original message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The token text exactly as it appeared.
    pub text: String,
    /// Byte offset of the token start in the source string.
    pub start: usize,
    /// Surface category.
    pub kind: TokenKind,
}

impl Token {
    /// Case-folded text used for case-insensitive matching (§V-A).
    pub fn folded(&self) -> String {
        self.text.to_lowercase()
    }
}

const EMOTICONS: &[&str] = &[
    ":)", ":(", ":-)", ":-(", ":D", ":-D", ";)", ";-)", ":P", ":-P", ":'(", "<3", ":/", ":-/",
    "xD", "XD", ":o", ":O",
];

/// Tokenizes a microblog message.
///
/// ```
/// use ngl_text::tokenize;
///
/// let toks: Vec<String> = tokenize("thanks @Gov and Andy!!! #stayhome")
///     .into_iter()
///     .map(|t| t.text)
///     .collect();
/// assert_eq!(toks, ["thanks", "@Gov", "and", "Andy", "!!!", "#stayhome"]);
/// ```
///
/// Rules, in priority order at each position:
/// 1. URLs (`http://`, `https://`, `www.`) run until whitespace.
/// 2. Emoticons from a small fixed inventory are kept whole.
/// 3. `#` / `@` followed by a word character starts a hashtag/mention
///    token running over word characters, digits and underscores.
/// 4. Number runs (digits with internal `.`/`,`/`:` separators).
/// 5. Word runs (alphabetic plus internal apostrophes: "don't").
/// 6. Anything else becomes punctuation runs of identical characters.
///
/// Input beyond [`MAX_TWEET_CHARS`] characters is ignored (real tweets
/// are ≤ 280 chars; anything past the cap is adversarial or corrupt),
/// so degenerate multi-megabyte lines cost bounded work and can never
/// blow up downstream encoders. Empty and all-whitespace input yields
/// an empty token list.
pub fn tokenize(text: &str) -> Vec<Token> {
    let text = truncate_chars(text, MAX_TWEET_CHARS);
    let bytes: Vec<char> = text.chars().collect();
    // Byte offset of each char for reporting spans in bytes.
    let mut byte_of = Vec::with_capacity(bytes.len() + 1);
    let mut off = 0usize;
    for c in &bytes {
        byte_of.push(off);
        off += c.len_utf8();
    }
    byte_of.push(off);

    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // URL?
        if starts_with_at(&bytes, i, "http://")
            || starts_with_at(&bytes, i, "https://")
            || starts_with_at(&bytes, i, "www.")
        {
            let start = i;
            while i < n && !bytes[i].is_whitespace() {
                i += 1;
            }
            tokens.push(make(text, &byte_of, start, i, TokenKind::Url));
            continue;
        }
        // Emoticon?
        if let Some(len) = match_emoticon(&bytes, i) {
            tokens.push(make(text, &byte_of, i, i + len, TokenKind::Emoticon));
            i += len;
            continue;
        }
        // Hashtag / mention?
        if (c == '#' || c == '@') && i + 1 < n && is_word_char(bytes[i + 1]) {
            let start = i;
            i += 1;
            while i < n && is_word_char(bytes[i]) {
                i += 1;
            }
            let kind = if c == '#' { TokenKind::Hashtag } else { TokenKind::Mention };
            tokens.push(make(text, &byte_of, start, i, kind));
            continue;
        }
        // Number?
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n
                && (bytes[i].is_ascii_digit()
                    || (matches!(bytes[i], '.' | ',' | ':')
                        && i + 1 < n
                        && bytes[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            tokens.push(make(text, &byte_of, start, i, TokenKind::Number));
            continue;
        }
        // Word?
        if c.is_alphabetic() {
            let start = i;
            i += 1;
            while i < n
                && (bytes[i].is_alphabetic()
                    || (matches!(bytes[i], '\'' | '’')
                        && i + 1 < n
                        && bytes[i + 1].is_alphabetic()))
            {
                i += 1;
            }
            tokens.push(make(text, &byte_of, start, i, TokenKind::Word));
            continue;
        }
        // Punctuation run of the same character ("..." stays together).
        let start = i;
        let p = bytes[i];
        i += 1;
        while i < n && bytes[i] == p {
            i += 1;
        }
        tokens.push(make(text, &byte_of, start, i, TokenKind::Punct));
    }
    tokens
}

/// Hard cap on the characters [`tokenize`] will look at — the
/// robustness budget for a single stream record. Twitter caps tweets
/// at 280 characters, so 10k leaves ample headroom for legitimate
/// long-form input while bounding adversarial lines.
pub const MAX_TWEET_CHARS: usize = 10_000;

/// `text` truncated to at most `max` characters, respecting UTF-8
/// boundaries (never panics mid-codepoint).
fn truncate_chars(text: &str, max: usize) -> &str {
    match text.char_indices().nth(max) {
        Some((byte, _)) => &text[..byte],
        None => text,
    }
}

fn make(text: &str, byte_of: &[usize], start: usize, end: usize, kind: TokenKind) -> Token {
    Token {
        text: text[byte_of[start]..byte_of[end]].to_string(),
        start: byte_of[start],
        kind,
    }
}

fn starts_with_at(chars: &[char], i: usize, pat: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    if i + p.len() > chars.len() {
        return false;
    }
    chars[i..i + p.len()]
        .iter()
        .zip(&p)
        .all(|(a, b)| a.eq_ignore_ascii_case(b))
}

fn match_emoticon(chars: &[char], i: usize) -> Option<usize> {
    // Longest match first.
    let rest: String = chars[i..chars.len().min(i + 4)].iter().collect();
    let mut best = None;
    for e in EMOTICONS {
        if rest.starts_with(e) {
            let l = e.chars().count();
            if best.is_none_or(|b| l > b) {
                best = Some(l);
            }
        }
    }
    best
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// English function words that can never constitute an entity mention on
/// their own. Local NER occasionally emits a stray `B-`/`I-` tag on one
/// of these (a partial-extraction artifact); registering such a token as
/// a candidate surface form would flood the mention-extraction scan with
/// junk, so the pipeline filters all-stopword surfaces at seeding time.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "from", "and", "or", "but", "with",
    "by", "as", "is", "are", "was", "were", "be", "been", "it", "its", "this", "that", "these",
    "those", "my", "your", "his", "her", "their", "our", "so", "not", "no", "if", "then",
];

/// Whether every token of a (folded) surface is a stopword.
pub fn is_stopword_surface<S: AsRef<str>>(tokens: &[S]) -> bool {
    !tokens.is_empty()
        && tokens.iter().all(|t| {
            let f = t.as_ref().to_lowercase();
            STOPWORDS.contains(&f.trim_start_matches('#'))
        })
}

/// Canonical surface form of a token sequence: case-folded tokens joined
/// with single spaces, with leading `#` stripped from hashtags (the paper
/// treats "#coronavirus" and "coronavirus" as the same surface form).
pub fn normalize_surface(tokens: &[&str]) -> String {
    tokens
        .iter()
        .map(|t| {
            let t = t.strip_prefix('#').unwrap_or(t);
            t.to_lowercase()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Normalizes each token of a [`Token`] slice (convenience wrapper).
pub fn normalize_tokens(tokens: &[Token]) -> Vec<String> {
    tokens
        .iter()
        .map(|t| {
            let s = t.text.strip_prefix('#').unwrap_or(&t.text);
            s.to_lowercase()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn splits_plain_words() {
        let t = tokenize("Italy reports new cases");
        assert_eq!(texts(&t), vec!["Italy", "reports", "new", "cases"]);
        assert!(t.iter().all(|t| t.kind == TokenKind::Word));
    }

    #[test]
    fn keeps_hashtags_and_mentions_whole() {
        let t = tokenize("thanks @GovAndyBeshear #coronavirus update");
        assert_eq!(
            texts(&t),
            vec!["thanks", "@GovAndyBeshear", "#coronavirus", "update"]
        );
        assert_eq!(t[1].kind, TokenKind::Mention);
        assert_eq!(t[2].kind, TokenKind::Hashtag);
    }

    #[test]
    fn urls_survive() {
        let t = tokenize("see https://nhs.uk/covid for info");
        assert_eq!(texts(&t), vec!["see", "https://nhs.uk/covid", "for", "info"]);
        assert_eq!(t[1].kind, TokenKind::Url);
    }

    #[test]
    fn numbers_keep_internal_separators() {
        let t = tokenize("cases hit 1,000.5 at 10:30");
        assert_eq!(texts(&t), vec!["cases", "hit", "1,000.5", "at", "10:30"]);
        assert_eq!(t[2].kind, TokenKind::Number);
    }

    #[test]
    fn trailing_punctuation_detaches() {
        let t = tokenize("Stay home, Italy!!!");
        assert_eq!(texts(&t), vec!["Stay", "home", ",", "Italy", "!!!"]);
        assert_eq!(t[4].kind, TokenKind::Punct);
    }

    #[test]
    fn apostrophes_stay_inside_words() {
        let t = tokenize("don't panic y'all");
        assert_eq!(texts(&t), vec!["don't", "panic", "y'all"]);
    }

    #[test]
    fn emoticons_kept_whole() {
        let t = tokenize("stay safe :) please :-(");
        assert_eq!(texts(&t), vec!["stay", "safe", ":)", "please", ":-("]);
        assert_eq!(t[2].kind, TokenKind::Emoticon);
    }

    #[test]
    fn offsets_point_into_source() {
        let src = "US déjà #vu";
        let t = tokenize(src);
        for tok in &t {
            assert!(src[tok.start..].starts_with(tok.text.as_str()));
        }
    }

    #[test]
    fn normalize_strips_hashtag_and_case() {
        assert_eq!(
            normalize_surface(&["#Coronavirus", "UPDATE"]),
            "coronavirus update"
        );
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn standalone_hash_is_punct() {
        let t = tokenize("# alone");
        assert_eq!(t[0].kind, TokenKind::Punct);
    }

    #[test]
    fn all_whitespace_variants_give_no_tokens() {
        assert!(tokenize(" ").is_empty());
        assert!(tokenize("\u{a0}\u{2003}\u{2009}").is_empty());
        assert!(tokenize(&" ".repeat(50_000)).is_empty());
    }

    #[test]
    fn oversized_input_is_truncated_not_panicking() {
        // One giant 25k-char "word" collapses to a single capped token.
        let giant = "a".repeat(25_000);
        let toks = tokenize(&giant);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text.chars().count(), MAX_TWEET_CHARS);

        // Many short words: total characters consumed stays within the
        // cap, and every produced token is intact.
        let many = "word ".repeat(5_000); // 25k chars
        let toks = tokenize(&many);
        assert!(!toks.is_empty());
        assert!(toks.len() <= MAX_TWEET_CHARS / 5 + 1);
        let last = toks.last().unwrap();
        assert!(last.start + last.text.len() <= MAX_TWEET_CHARS);
        assert!(toks.iter().all(|t| t.text == "word"));
    }

    #[test]
    fn truncation_respects_utf8_boundaries() {
        // 2-byte codepoints: a byte-based cut at 10_000 would split one.
        let giant = "é".repeat(20_000);
        let toks = tokenize(&giant);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text.chars().count(), MAX_TWEET_CHARS);
        // 4-byte codepoints too.
        let emoji = "\u{1F600}".repeat(12_000);
        let _ = tokenize(&emoji); // must not panic
    }
}
