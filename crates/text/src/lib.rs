//! # ngl-text
//!
//! Text primitives for microblog NER:
//!
//! * [`EntityType`] — the paper's four preset entity types (PER, LOC,
//!   ORG, MISC) plus the L+1-th non-entity class used by the Entity
//!   Classifier.
//! * [`BioTag`] — the BIO token-level tagging scheme (Ramshaw & Marcus)
//!   with encode/decode between tag sequences and typed [`Span`]s.
//! * [`tokenize`] — a tweet-aware tokenizer (hashtags, @mentions, URLs,
//!   emoticons survive as single tokens).
//! * [`normalize_surface`] — canonical surface forms for candidate
//!   bookkeeping (case-folded, hashtag-stripped), as used by the
//!   CandidatePrefixTrie's case-insensitive matching (§V-A).
//! * [`shape`] — orthographic word-shape features consumed by the
//!   feature-based baselines.

#![forbid(unsafe_code)]

pub mod bio;
pub mod shape;
pub mod span;
pub mod token;
pub mod types;

pub use bio::{decode_bio, encode_bio, BioTag};
pub use span::Span;
pub use token::{
    is_stopword_surface, normalize_surface, normalize_tokens, tokenize, Token, TokenKind,
    MAX_TWEET_CHARS, STOPWORDS,
};
pub use types::EntityType;
