//! Fused vector-kernel microbenchmarks: the scalar vs SIMD dot product,
//! the one-vs-many cosine block scan against a per-pair loop, and the
//! i8-quantized dot against its f32 counterpart. These are the
//! primitives under every hot stage (clustering, pooling, classifier),
//! so their ns/iter is the floor for pipeline throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ngl_nn::kernels::{self, KernelMode, QuantizedVec};

const DIM: usize = 64;

fn vectors(n: usize, seed: u64) -> Vec<Vec<f32>> {
    // SplitMix64-style generator: self-contained, deterministic.
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| (0..DIM).map(|_| (next() % 2000) as f32 / 1000.0 - 1.0).collect())
        .collect()
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dot");
    let v = vectors(2, 11);
    let (a, b) = (&v[0], &v[1]);
    for mode in [KernelMode::Scalar, KernelMode::Simd] {
        kernels::set_kernel_mode(mode);
        let f = kernels::dot_fn();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}").to_lowercase()),
            &mode,
            |bch, _| bch.iter(|| f(black_box(a), black_box(b))),
        );
    }
    group.finish();
}

fn bench_cosine_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/cosine_block");
    group.sample_size(30);
    let rows = vectors(512, 23);
    let q = vectors(1, 29).remove(0);
    for mode in [KernelMode::Scalar, KernelMode::Simd] {
        kernels::set_kernel_mode(mode);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}").to_lowercase()),
            &mode,
            |bch, _| bch.iter(|| kernels::cosine_best_of(black_box(&q), black_box(&rows))),
        );
    }
    group.finish();
}

fn bench_quantized_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/quantized_dot");
    let v = vectors(2, 37);
    let (a, b) = (&v[0], &v[1]);
    let (qa, qb) = (QuantizedVec::quantize(a), QuantizedVec::quantize(b));
    kernels::set_kernel_mode(KernelMode::Simd);
    let f = kernels::dot_fn();
    group.bench_function("f32", |bch| bch.iter(|| f(black_box(a), black_box(b))));
    group.bench_function("i8", |bch| {
        bch.iter(|| kernels::dot_quantized(black_box(&qa), black_box(&qb)))
    });
    group.finish();
}

criterion_group!(benches, bench_dot, bench_cosine_block, bench_quantized_dot);
criterion_main!(benches);
