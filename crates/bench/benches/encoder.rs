//! Local NER encoding throughput — the Table IV "Local NER execution
//! time" column is dominated by this kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ngl_corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ngl_encoder::{EncoderConfig, TokenEncoder};

fn setup() -> (TokenEncoder, Vec<Vec<String>>) {
    let kb = KnowledgeBase::build(3, 100);
    let d = Dataset::generate(
        &DatasetSpec::streaming("bench", 200, vec![Topic::Politics], 17),
        &kb,
    );
    let enc = TokenEncoder::new(EncoderConfig::default());
    (enc, d.tweets.into_iter().map(|t| t.tokens).collect())
}

fn bench_encode(c: &mut Criterion) {
    let (enc, sentences) = setup();
    let total_tokens: usize = sentences.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("encoder");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(total_tokens as u64));
    group.bench_function("encode_200_tweets", |b| {
        b.iter(|| {
            let mut spans = 0usize;
            for s in &sentences {
                let out = enc.encode_sentence(black_box(s));
                spans += out.tags.len();
            }
            spans
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
