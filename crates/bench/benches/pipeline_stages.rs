//! End-to-end pipeline stage costs — the Table IV claim under test is
//! that Global NER adds only a *small* overhead on top of Local NER.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ngl_core::{
    AblationMode, ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer,
    PhraseEmbedder, PhraseEmbedderConfig,
};
use ngl_corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ngl_encoder::{EncoderConfig, TokenEncoder};

fn setup() -> (TokenEncoder, PhraseEmbedder, EntityClassifier, Vec<Vec<String>>) {
    let dim = 32;
    let kb = KnowledgeBase::build(13, 100);
    let d = Dataset::generate(
        &DatasetSpec::streaming("bench", 300, vec![Topic::Health], 29),
        &kb,
    );
    (
        TokenEncoder::new(EncoderConfig { out_dim: dim, ..Default::default() }),
        PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
        d.tweets.into_iter().map(|t| t.tokens).collect(),
    )
}

fn bench_local_stage(c: &mut Criterion) {
    let (enc, phrase, clf, sentences) = setup();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("local_stage_300_tweets", |b| {
        b.iter(|| {
            let mut p = NerGlobalizer::new(
                enc.clone(),
                phrase.clone(),
                clf.clone(),
                GlobalizerConfig { ablation: AblationMode::LocalOnly, ..Default::default() },
            );
            p.process_batch(black_box(&sentences));
            p.n_surfaces()
        })
    });
    group.finish();
}

fn bench_global_stage(c: &mut Criterion) {
    let (enc, phrase, clf, sentences) = setup();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("full_pipeline_300_tweets", |b| {
        b.iter(|| {
            let mut p = NerGlobalizer::new(
                enc.clone(),
                phrase.clone(),
                clf.clone(),
                GlobalizerConfig::default(),
            );
            p.process_batch(black_box(&sentences));
            p.finalize().len()
        })
    });
    // The interesting number: global overhead in isolation (re-running
    // finalize on an already-processed stream).
    let mut p = NerGlobalizer::new(enc, phrase, clf, GlobalizerConfig::default());
    p.process_batch(&sentences);
    group.bench_function("global_stage_only_300_tweets", |b| {
        b.iter(|| p.finalize().len())
    });
    group.finish();
}

criterion_group!(benches, bench_local_stage, bench_global_stage);
criterion_main!(benches);
