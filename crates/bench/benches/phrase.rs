//! Phrase-embedding and attention-pooling throughput (§V-B, Eqs. 1–3 and
//! 6–8) — the per-mention costs of Global NER.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ngl_core::{ClassifierConfig, EntityClassifier, PhraseEmbedder, PhraseEmbedderConfig};
use ngl_nn::Matrix;
use ngl_text::{EntityType, Span};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
    )
}

fn bench_embed(c: &mut Criterion) {
    let dim = 32;
    let embedder = PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() });
    let sentence = random_matrix(16, dim, 5);
    let mut group = c.benchmark_group("phrase_embed");
    for len in [1usize, 2, 4] {
        let span = Span::new(3, 3 + len, EntityType::Person);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| embedder.embed(black_box(&sentence), black_box(&span)))
        });
    }
    group.finish();
}

fn bench_pool_and_classify(c: &mut Criterion) {
    let dim = 32;
    let classifier = EntityClassifier::new(ClassifierConfig { dim, ..Default::default() });
    let mut group = c.benchmark_group("classify_cluster");
    for n in [1usize, 10, 100, 1000] {
        let locals = random_matrix(n, dim, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| classifier.predict(black_box(&locals)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed, bench_pool_and_classify);
criterion_main!(benches);
