//! Mention-extraction scan throughput (§V-A) — the Global NER step that
//! touches every token of the stream, so its cost dominates the Table IV
//! time-overhead column together with clustering.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ngl_corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ngl_ctrie::CTrie;

fn build(n_surfaces: usize) -> (CTrie, Vec<Vec<String>>) {
    let kb = KnowledgeBase::build(7, 200);
    let d = Dataset::generate(
        &DatasetSpec::streaming("bench", 400, vec![Topic::Health], 11),
        &kb,
    );
    let mut trie = CTrie::new();
    for e in kb.entities().iter().take(n_surfaces) {
        for a in &e.aliases {
            let toks: Vec<&str> = a.iter().map(String::as_str).collect();
            trie.insert(&toks);
        }
    }
    let sentences = d.tweets.into_iter().map(|t| t.tokens).collect();
    (trie, sentences)
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctrie_scan");
    group.sample_size(30);
    for n_surfaces in [50usize, 200, 800] {
        let (trie, sentences) = build(n_surfaces);
        group.bench_with_input(
            BenchmarkId::new("400_tweets", n_surfaces),
            &n_surfaces,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for s in &sentences {
                        total += trie.extract_mentions(black_box(s), 4).len();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let kb = KnowledgeBase::build(9, 400);
    c.bench_function("ctrie_insert_2000_surfaces", |b| {
        b.iter(|| {
            let mut trie = CTrie::new();
            for e in kb.entities() {
                for a in &e.aliases {
                    let toks: Vec<&str> = a.iter().map(String::as_str).collect();
                    trie.insert(black_box(&toks));
                }
            }
            trie.len()
        })
    });
}

criterion_group!(benches, bench_scan, bench_insert);
criterion_main!(benches);
