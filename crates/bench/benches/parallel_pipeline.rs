//! The PR-level perf claims under test: the scoped-thread executor
//! speeds up batch encoding and finalize on multi-core hosts
//! (`NGL_THREADS` controls the worker count), and incremental finalize
//! beats a from-scratch rebuild by a wide margin once a stream has been
//! scanned.
//!
//! Output is identical in every configuration (see
//! `tests/parallel_equivalence.rs`), so these groups compare cost only.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use ngl_core::{
    ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer, PhraseEmbedder,
    PhraseEmbedderConfig,
};
use ngl_corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ngl_encoder::{EncoderConfig, TokenEncoder};
use ngl_runtime::Executor;

const SIZES: [usize; 2] = [1_000, 5_000];

fn sentences(n: usize) -> Vec<Vec<String>> {
    let kb = KnowledgeBase::build(13, 100);
    let d = Dataset::generate(
        &DatasetSpec::streaming("bench", n, vec![Topic::Health, Topic::Politics], 29),
        &kb,
    );
    d.tweets.into_iter().map(|t| t.tokens).collect()
}

fn pipeline(exec: Executor) -> NerGlobalizer<TokenEncoder> {
    let dim = 32;
    NerGlobalizer::new(
        TokenEncoder::new(EncoderConfig { out_dim: dim, ..Default::default() }),
        PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
        GlobalizerConfig::default(),
    )
    .with_executor(exec)
}

/// Sequential vs parallel batch encoding.
fn bench_process_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/process_batch");
    group.sample_size(10);
    for n in SIZES {
        let toks = sentences(n);
        for (label, exec) in
            [("seq", Executor::sequential()), ("par", Executor::from_env())]
        {
            group.bench_function(format!("{label}_{n}"), |b| {
                b.iter_batched(
                    || (pipeline(exec.clone()), toks.clone()),
                    |(mut p, toks)| {
                        p.process_batch_owned(black_box(toks));
                        p.n_surfaces()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// Sequential vs parallel from-scratch finalize (scan + embed + cluster
/// + classify over the whole stream).
fn bench_finalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/finalize_full");
    group.sample_size(10);
    for n in SIZES {
        let toks = sentences(n);
        for (label, exec) in
            [("seq", Executor::sequential()), ("par", Executor::from_env())]
        {
            let mut base = pipeline(exec);
            base.process_batch_owned(toks.clone());
            group.bench_function(format!("{label}_{n}"), |b| {
                b.iter_batched(
                    || base.clone(),
                    |mut p| {
                        p.reset_incremental_state();
                        p.finalize().len()
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// Incremental finalize (scan only what arrived since the last call)
/// vs a forced full rebuild, after a 100-tweet follow-up batch of
/// already-seen tweets (no new surfaces, so the CTrie version holds and
/// the incremental path stays on its fast track).
fn bench_incremental_finalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/finalize_followup");
    group.sample_size(10);
    for n in SIZES {
        let toks = sentences(n);
        let extra: Vec<Vec<String>> = toks[..100].to_vec();
        let mut base = pipeline(Executor::from_env());
        base.process_batch_owned(toks);
        base.finalize();
        group.bench_function(format!("incremental_{n}"), |b| {
            b.iter_batched(
                || (base.clone(), extra.clone()),
                |(mut p, extra)| {
                    p.process_batch_owned(extra);
                    p.finalize().len()
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("full_rebuild_{n}"), |b| {
            b.iter_batched(
                || (base.clone(), extra.clone()),
                |(mut p, extra)| {
                    p.process_batch_owned(extra);
                    p.reset_incremental_state();
                    p.finalize().len()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Persistent pool vs per-call scoped spawn on small batches — the
/// steady-state submission cost the pool exists to eliminate.
fn bench_spawn_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/spawn_overhead");
    group.sample_size(10);
    let items: Vec<u64> = (0..64).collect();
    let work = |x: u64| {
        let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for _ in 0..64 {
            h ^= h >> 27;
            h = h.wrapping_mul(0x3C79_AC49_2BA7_B653);
        }
        h
    };
    let pooled = Executor::new(2);
    group.bench_function("pooled_64", |b| {
        b.iter(|| {
            pooled
                .par_map(black_box(items.clone()), |_, x| work(x))
                .into_iter()
                .fold(0u64, u64::wrapping_add)
        })
    });
    group.bench_function("scoped_spawn_64", |b| {
        b.iter(|| {
            use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
            let next = AtomicUsize::new(0);
            let acc = AtomicU64::new(0);
            let items = black_box(&items);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        acc.fetch_add(work(items[i]), Ordering::Relaxed);
                    });
                }
            });
            acc.load(Ordering::Relaxed)
        })
    });
    group.finish();
}

/// The giant-surface finalize tail: agglomerative linkage over one
/// skewed surface's mentions, sequential vs the chunked parallel
/// closest-pair scan.
fn bench_giant_surface(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/giant_surface");
    group.sample_size(10);
    let points: Vec<Vec<f32>> = (0..320)
        .map(|i| (0..16).map(|j| ((i * 31 + j * 7) % 997) as f32 / 997.0).collect())
        .collect();
    for (label, exec) in [("seq", Executor::sequential()), ("par4", Executor::new(4))] {
        group.bench_function(label, |b| {
            b.iter(|| {
                ngl_cluster::agglomerative_exec(black_box(&points), 0.6, &exec).n_clusters
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_process_batch,
    bench_finalize,
    bench_incremental_finalize,
    bench_spawn_overhead,
    bench_giant_surface
);
criterion_main!(benches);
