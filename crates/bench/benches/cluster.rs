//! Candidate-cluster generation cost (§V-C): batch agglomerative
//! clustering vs the incremental one-pass variant, across mention-set
//! sizes typical for candidate surface forms.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ngl_cluster::{agglomerative, OnlineClusters};

fn mention_embeddings(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // Two underlying candidates (ambiguous surface form).
            let axis = i % 2;
            (0..dim)
                .map(|c| {
                    let base = if c == axis { 1.0 } else { 0.0 };
                    base + rng.gen_range(-0.2..0.2f32)
                })
                .collect()
        })
        .collect()
}

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative");
    group.sample_size(20);
    for n in [20usize, 100, 400] {
        let points = mention_embeddings(n, 32, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| agglomerative(black_box(&points), 0.5).n_clusters)
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_clusters");
    group.sample_size(30);
    for n in [100usize, 1000, 4000] {
        let points = mention_embeddings(n, 32, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut oc = OnlineClusters::new(0.5);
                for p in &points {
                    oc.insert(black_box(p));
                }
                oc.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_agglomerative, bench_online);
criterion_main!(benches);
