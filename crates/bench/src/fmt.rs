//! Plain-text table rendering for the reproduce harness.

/// Renders a fixed-width table with a header rule, matching the
/// row/column layout of the paper's tables.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("{h:<w$}  "));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{c:<w$}  "));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Two-decimal formatting used for F1/P/R cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Percentage formatting for gain columns.
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", v * 100.0)
}

/// Seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("a     long-header"));
        assert!(lines[3].starts_with("x     1"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(0.666), "0.67");
        assert_eq!(pct(0.4704), "+47.0%");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.50");
    }
}
