//! Regenerators for every table and figure of the paper.

use ngl_baselines::{AkbikTagger, DocumentTagger, DoclNer, HireNer};
use ngl_core::AblationMode;
use ngl_corpus::{Dataset, GoldMention};
use ngl_encoder::{SequenceTagger, TokenEncoder};
use ngl_eval::{evaluate, evaluate_emd, fully_missed_entities, mistype_stats, recall_by_frequency};
use ngl_text::{decode_bio, EntityType, Span};

use crate::experiment::{Experiment, PipelineRun};
use crate::fmt::{f2, pct, render_table, secs};

/// Full-pipeline runs over every eval dataset, aligned with
/// `exp.data.eval`. Computed once (in parallel) and shared by the tables.
pub struct EvalRuns {
    /// One FullGlobal run per eval dataset.
    pub full: Vec<PipelineRun>,
}

/// Runs the full pipeline over all six eval datasets in parallel on
/// the workspace executor (one task per dataset, `NGL_THREADS`-aware).
pub fn run_all(exp: &Experiment) -> EvalRuns {
    let exec = ngl_runtime::Executor::from_env();
    let full =
        exec.par_map_ref(&exp.data.eval, |_, d| exp.run_pipeline(d, AblationMode::FullGlobal));
    EvalRuns { full }
}

fn per_type_f1(scores: &ngl_eval::NerScores) -> Vec<String> {
    EntityType::ALL
        .iter()
        .map(|&t| f2(scores.of(t).f1()))
        .collect()
}

/// Table I: dataset statistics.
pub fn table1(exp: &Experiment) -> String {
    let mut rows = Vec::new();
    let mut push = |d: &Dataset| {
        let s = d.stats();
        rows.push(vec![
            s.name.clone(),
            s.size.to_string(),
            s.n_topics.to_string(),
            s.n_hashtags.to_string(),
            s.unique_entities.to_string(),
            s.total_mentions.to_string(),
        ]);
    };
    for d in &exp.data.eval[..4] {
        push(d);
    }
    push(&exp.data.d5);
    for d in &exp.data.eval[4..] {
        push(d);
    }
    render_table(
        "Table I: Twitter datasets (synthetic stream substrate)",
        &["Dataset", "Size", "#Topics", "#Hashtags", "#Entities", "#Mentions"],
        &rows,
    )
}

/// Table II: Phrase Embedder / Entity Classifier training for both
/// contrastive objectives, extended with the production-relevant
/// comparison — the full pipeline's mean streaming macro-F1 under each
/// objective (which is what the paper's choice of the triplet variant
/// ultimately rests on).
pub fn table2(exp: &Experiment) -> String {
    let (soft, soft_stack) = exp.train_soft_nn_stack();
    let pipeline_f1 = |phrase: &ngl_core::PhraseEmbedder,
                       classifier: &ngl_core::EntityClassifier|
     -> f64 {
        let mut f1s = Vec::new();
        for d in exp.data.streaming_eval() {
            let mut p = ngl_core::NerGlobalizer::new(
                exp.local.clone(),
                phrase.clone(),
                classifier.clone(),
                ngl_core::GlobalizerConfig::default(),
            );
            let toks: Vec<Vec<String>> = d.tweets.iter().map(|t| t.tokens.clone()).collect();
            p.process_batch_owned(toks);
            let out = p.finalize();
            let gold = Experiment::gold_of(d);
            f1s.push(evaluate(&gold, &out).macro_f1());
        }
        f1s.iter().sum::<f64>() / f1s.len() as f64
    };
    let triplet_pipeline = pipeline_f1(&exp.phrase, &exp.classifier);
    let soft_pipeline = pipeline_f1(&soft_stack.0, &soft_stack.1);
    let rows = vec![
        vec![
            exp.triplet_report.objective.clone(),
            format!("{} triplets", exp.triplet_report.dataset_size),
            format!("{:.4}", exp.triplet_report.train_loss),
            format!("{:.4}", exp.triplet_report.val_loss),
            format!("{:.1}%", exp.triplet_report.classifier_val_macro_f1 * 100.0),
            f2(triplet_pipeline),
        ],
        vec![
            soft.objective.clone(),
            format!("{} candidate mentions", soft.dataset_size),
            format!("{:.4}", soft.train_loss),
            format!("{:.4}", soft.val_loss),
            format!("{:.1}%", soft.classifier_val_macro_f1 * 100.0),
            f2(soft_pipeline),
        ],
    ];
    render_table(
        "Table II: Training of Phrase Embedder and Entity Classifier",
        &[
            "Objective",
            "Dataset size",
            "Train loss",
            "Val loss",
            "Clf val Macro-F1",
            "Pipeline Macro-F1 (D1-D4)",
        ],
        &rows,
    )
}

/// Table III: NER Globalizer vs local NER systems.
pub fn table3(
    exp: &Experiment,
    runs: &EvalRuns,
    aguilar: &dyn SequenceTagger,
    bert: &dyn SequenceTagger,
) -> String {
    let mut rows = Vec::new();
    for (d, run) in exp.data.eval.iter().zip(&runs.full) {
        let gold = Experiment::gold_of(d);
        let mut push = |system: &str, pred: &[Vec<Span>]| {
            let s = evaluate(&gold, pred);
            let mut row = vec![d.name.clone(), system.to_string()];
            row.extend(per_type_f1(&s));
            row.push(f2(s.macro_f1()));
            rows.push(row);
        };
        push("NER Globalizer", &run.global);
        let ag: Vec<Vec<Span>> = d
            .tweets
            .iter()
            .map(|t| decode_bio(&aguilar.tag(&t.tokens)))
            .collect();
        push("Aguilar et al.", &ag);
        let bn: Vec<Vec<Span>> = d
            .tweets
            .iter()
            .map(|t| decode_bio(&bert.tag(&t.tokens)))
            .collect();
        push("BERT-NER", &bn);
    }
    render_table(
        "Table III: NER Globalizer vs. Local NER systems (F1 per type, Macro-F1)",
        &["Dataset", "System", "PER", "LOC", "ORG", "MISC", "MacroF1"],
        &rows,
    )
}

/// Table IV: local→global ablation with per-type P/R/F1, execution time,
/// F1 gain and time overhead.
pub fn table4(exp: &Experiment, runs: &EvalRuns) -> String {
    let mut rows = Vec::new();
    let mut macro_gains = Vec::new();
    let mut streaming_gains = Vec::new();
    let mut type_gains: [Vec<f64>; EntityType::COUNT] = Default::default();
    for (di, (d, run)) in exp.data.eval.iter().zip(&runs.full).enumerate() {
        let gold = Experiment::gold_of(d);
        let ls = evaluate(&gold, &run.local);
        let gs = evaluate(&gold, &run.global);
        for &ty in &[
            EntityType::Organization,
            EntityType::Miscellaneous,
            EntityType::Location,
            EntityType::Person,
        ] {
            let l = ls.of(ty);
            let g = gs.of(ty);
            let gain = if l.f1() > 0.0 { g.f1() / l.f1() - 1.0 } else { f64::NAN };
            if gain.is_finite() {
                type_gains[ty.index()].push(gain);
            }
            rows.push(vec![
                d.name.clone(),
                ty.code().to_string(),
                f2(l.precision()),
                f2(l.recall()),
                f2(l.f1()),
                secs(run.timings.local),
                f2(g.precision()),
                f2(g.recall()),
                f2(g.f1()),
                secs(run.timings.global),
                if gain.is_finite() { pct(gain) } else { "n/a".to_string() },
                secs(run.timings.global),
            ]);
        }
        let mg = if ls.macro_f1() > 0.0 {
            gs.macro_f1() / ls.macro_f1() - 1.0
        } else {
            f64::NAN
        };
        if mg.is_finite() {
            macro_gains.push(mg);
            if di < 4 {
                streaming_gains.push(mg);
            }
        }
    }
    let mut out = render_table(
        "Table IV: Ablation — effectiveness and execution time (s), Local vs Global NER",
        &[
            "Dataset", "Type", "L-P", "L-R", "L-F1", "L-Time", "G-P", "G-R", "G-F1", "G-Time",
            "F1 Gain", "Overhead",
        ],
        &rows,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    out.push_str(&format!(
        "\nAverage Macro-F1 gain (all datasets): {}\n",
        pct(mean(&macro_gains))
    ));
    out.push_str(&format!(
        "Average Macro-F1 gain (streaming D1-D4): {}\n",
        pct(mean(&streaming_gains))
    ));
    for ty in EntityType::ALL {
        out.push_str(&format!(
            "Average F1 gain {}: {}\n",
            ty.code(),
            pct(mean(&type_gains[ty.index()]))
        ));
    }
    out
}

/// Table V: NER Globalizer vs global NER baselines.
pub fn table5(
    exp: &Experiment,
    runs: &EvalRuns,
    akbik: &AkbikTagger,
    hire: &HireNer,
    docl: &DoclNer<TokenEncoder>,
) -> String {
    let mut rows = Vec::new();
    for (d, run) in exp.data.eval.iter().zip(&runs.full) {
        let gold = Experiment::gold_of(d);
        let sentences: Vec<Vec<String>> = d.tweets.iter().map(|t| t.tokens.clone()).collect();
        {
            let s = evaluate(&gold, &run.global);
            let mut row = vec![d.name.clone(), "NER Globalizer".to_string()];
            row.extend(per_type_f1(&s));
            row.push(f2(s.macro_f1()));
            rows.push(row);
        }
        for (name, tags) in [
            ("HIRE-NER", hire.tag_document(&sentences)),
            ("DocL-NER", docl.tag_document(&sentences)),
            ("Akbik et al.", akbik.tag_document(&sentences)),
        ] {
            let pred: Vec<Vec<Span>> = tags.iter().map(|t| decode_bio(t)).collect();
            let s = evaluate(&gold, &pred);
            let mut row = vec![d.name.clone(), name.to_string()];
            row.extend(per_type_f1(&s));
            row.push(f2(s.macro_f1()));
            rows.push(row);
        }
    }
    render_table(
        "Table V: Effectiveness of Global NER systems (F1 per type, Macro-F1)",
        &["Dataset", "System", "PER", "LOC", "ORG", "MISC", "MacroF1"],
        &rows,
    )
}

/// Figure 3: component ablation over the streaming datasets (D1–D4).
pub fn fig3(exp: &Experiment) -> String {
    let modes = [
        ("Local NER only", AblationMode::LocalOnly),
        ("+ Mention extraction", AblationMode::MentionExtraction),
        ("+ Local embedding classifier", AblationMode::LocalClassifier),
        ("Full Global NER", AblationMode::FullGlobal),
    ];
    let mut rows = Vec::new();
    for (label, mode) in modes {
        let mut per_dataset = Vec::new();
        for d in exp.data.streaming_eval() {
            let run = exp.run_pipeline(d, mode);
            let gold = Experiment::gold_of(d);
            per_dataset.push(evaluate(&gold, &run.global).macro_f1());
        }
        let mean = per_dataset.iter().sum::<f64>() / per_dataset.len() as f64;
        let mut row = vec![label.to_string()];
        row.extend(per_dataset.iter().map(|&v| f2(v)));
        row.push(f2(mean));
        rows.push(row);
    }
    render_table(
        "Figure 3: Impact of components on performance (Macro-F1, streaming datasets)",
        &["Variant", "D1", "D2", "D3", "D4", "Mean"],
        &rows,
    )
}

/// Figure 4: entity recall by gold mention frequency (bin width 5) over
/// the streaming datasets.
pub fn fig4(exp: &Experiment, runs: &EvalRuns) -> String {
    let mut gold: Vec<Vec<GoldMention>> = Vec::new();
    let mut pred: Vec<Vec<Span>> = Vec::new();
    for (d, run) in exp.data.eval.iter().zip(&runs.full).take(4) {
        for (t, p) in d.tweets.iter().zip(&run.global) {
            gold.push(t.gold.clone());
            pred.push(p.clone());
        }
    }
    let bins = recall_by_frequency(&gold, &pred, 5);
    let rows: Vec<Vec<String>> = bins
        .iter()
        .map(|b| {
            vec![
                format!("{}-{}", b.lo, b.hi),
                b.entities.to_string(),
                b.mentions.to_string(),
                f2(b.recall()),
            ]
        })
        .collect();
    render_table(
        "Figure 4: Impact of mention frequency on detecting entities (streaming datasets)",
        &["Freq bin", "#Entities", "#Mentions", "Recall"],
        &rows,
    )
}

/// §I case study: the local model alone on the Covid stream (D2).
pub fn case_study(exp: &Experiment, runs: &EvalRuns) -> String {
    let d2_idx = exp
        .data
        .eval
        .iter()
        .position(|d| d.name == "D2")
        .expect("D2 present");
    let d2 = &exp.data.eval[d2_idx];
    let gold = Experiment::gold_of(d2);
    let s = evaluate(&gold, &runs.full[d2_idx].local);
    let mut rows: Vec<Vec<String>> = EntityType::ALL
        .iter()
        .map(|&t| vec![t.code().to_string(), f2(s.of(t).f1())])
        .collect();
    rows.push(vec!["Macro-F1".to_string(), f2(s.macro_f1())]);
    let mut out = render_table(
        "Case study (Sec. I): standalone Local NER on the Covid stream D2",
        &["Entity type", "F1"],
        &rows,
    );
    out.push_str(
        "\nExpected shape: modest Macro-F1 with MISC far below PER — the\n\
         inconsistent-detection/mistyping behaviour that motivates Global NER.\n",
    );
    out
}

/// §VI-C error analysis over the streaming datasets.
pub fn error_analysis(exp: &Experiment, runs: &EvalRuns) -> String {
    let mut gold_m: Vec<Vec<GoldMention>> = Vec::new();
    let mut gold_s: Vec<Vec<Span>> = Vec::new();
    let mut local: Vec<Vec<Span>> = Vec::new();
    let mut global: Vec<Vec<Span>> = Vec::new();
    for (d, run) in exp.data.eval.iter().zip(&runs.full).take(4) {
        for (i, t) in d.tweets.iter().enumerate() {
            gold_m.push(t.gold.clone());
            gold_s.push(t.gold_spans());
            local.push(run.local[i].clone());
            global.push(run.global[i].clone());
        }
    }
    let miss = fully_missed_entities(&gold_m, &local);
    let breakdown = mistype_stats(&gold_s, &global);
    let confusion = ngl_eval::ConfusionMatrix::build(&gold_s, &global);
    let rows = vec![
        vec![
            "Mentions of entities fully missed by Local NER".to_string(),
            format!(
                "{} of {} ({:.2}%) from {} of {} entities",
                miss.mentions_lost,
                miss.total_mentions,
                miss.mention_loss_rate() * 100.0,
                miss.entities_fully_missed,
                miss.total_entities
            ),
        ],
        vec![
            "Mentions mistyped by the Entity Classifier".to_string(),
            format!(
                "{} of {} ({:.2}%)",
                breakdown.mistyped,
                breakdown.total_gold(),
                breakdown.mistype_rate() * 100.0
            ),
        ],
        vec![
            "Correct / partial / missed / spurious".to_string(),
            format!(
                "{} / {} / {} / {}",
                breakdown.correct, breakdown.partial, breakdown.missed, breakdown.spurious
            ),
        ],
    ];
    let mut out = render_table(
        "Error analysis (Sec. VI-C), streaming datasets D1-D4",
        &["Error source", "Count"],
        &rows,
    );
    out.push_str("
Mention-level confusion (gold rows, predicted columns):
");
    out.push_str(&confusion.render());
    out
}

/// §VI-D EMD (boundary-only) gains of the full pipeline over Local NER.
pub fn emd_gains(exp: &Experiment, runs: &EvalRuns) -> String {
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for (d, run) in exp.data.eval.iter().zip(&runs.full) {
        let gold = Experiment::gold_of(d);
        let l = evaluate_emd(&gold, &run.local);
        let g = evaluate_emd(&gold, &run.global);
        let gain = if l.f1() > 0.0 { g.f1() / l.f1() - 1.0 } else { f64::NAN };
        if gain.is_finite() {
            gains.push(gain);
        }
        rows.push(vec![
            d.name.clone(),
            f2(l.f1()),
            f2(g.f1()),
            if gain.is_finite() { pct(gain) } else { "n/a".into() },
        ]);
    }
    let mut out = render_table(
        "EMD gains (Sec. VI-D): boundary-only F1, Local vs Global",
        &["Dataset", "Local EMD F1", "Global EMD F1", "Gain"],
        &rows,
    );
    out.push_str(&format!(
        "\nAverage EMD F1 gain: {}\n",
        pct(gains.iter().sum::<f64>() / gains.len().max(1) as f64)
    ));
    out
}

/// Diagnostic: largest clusters per predicted label on one dataset.
/// Not part of the paper's artifacts; used to debug classifier behaviour.
pub fn debug_surfaces(exp: &Experiment, dataset_name: &str) -> String {
    let d = exp
        .data
        .eval_by_name(dataset_name)
        .expect("dataset exists");
    let mut pipeline = ngl_core::NerGlobalizer::new(
        exp.local.clone(),
        exp.phrase.clone(),
        exp.classifier.clone(),
        ngl_core::GlobalizerConfig::default(),
    );
    let tokens: Vec<Vec<String>> = d.tweets.iter().map(|t| t.tokens.clone()).collect();
    pipeline.process_batch_owned(tokens);
    pipeline.finalize();
    let mut by_label: std::collections::BTreeMap<String, Vec<(usize, String)>> =
        std::collections::BTreeMap::new();
    for (surface, entry) in pipeline.candidate_base().iter() {
        for cluster in &entry.clusters {
            let label = match cluster.label {
                Some(Some(ty)) => ty.code().to_string(),
                Some(None) => "NONE".to_string(),
                None => "?".to_string(),
            };
            by_label
                .entry(label)
                .or_default()
                .push((cluster.members.len(), surface.clone()));
        }
    }
    let mut out = format!("Cluster labels on {dataset_name} (top 15 by size):\n");
    for (label, mut v) in by_label {
        v.sort_by_key(|x| std::cmp::Reverse(x.0));
        out.push_str(&format!("  {label}: "));
        for (n, s) in v.iter().take(15) {
            out.push_str(&format!("{s}({n}) "));
        }
        out.push('\n');
    }
    out
}

/// Ablation sweeps over the pipeline's design parameters — the tuning
/// choices §V-C/§V-D leave open (clustering threshold below the triplet
/// margin, the classifier confidence guard, the scan window k). Reports
/// mean macro-F1 over the streaming datasets.
pub fn ablations(exp: &Experiment) -> String {
    let run_with = |cfg: ngl_core::GlobalizerConfig| -> f64 {
        let mut f1s = Vec::new();
        for d in exp.data.streaming_eval() {
            let mut p = ngl_core::NerGlobalizer::new(
                exp.local.clone(),
                exp.phrase.clone(),
                exp.classifier.clone(),
                cfg,
            );
            let toks: Vec<Vec<String>> = d.tweets.iter().map(|t| t.tokens.clone()).collect();
            p.process_batch_owned(toks);
            let out = p.finalize();
            let gold = Experiment::gold_of(d);
            f1s.push(evaluate(&gold, &out).macro_f1());
        }
        f1s.iter().sum::<f64>() / f1s.len() as f64
    };

    let base = ngl_core::GlobalizerConfig::default();
    let mut rows = Vec::new();
    for t in [0.3f32, 0.5, 0.7, 0.9] {
        let f1 = run_with(ngl_core::GlobalizerConfig { cluster_threshold: t, ..base });
        rows.push(vec![
            "cluster_threshold".to_string(),
            format!("{t}"),
            f2(f1),
            if (t - base.cluster_threshold).abs() < 1e-6 { "default".into() } else { String::new() },
        ]);
    }
    for c in [0.0f32, 0.35, 0.5, 0.65] {
        let f1 = run_with(ngl_core::GlobalizerConfig { min_confidence: c, ..base });
        rows.push(vec![
            "min_confidence".to_string(),
            format!("{c}"),
            f2(f1),
            if (c - base.min_confidence).abs() < 1e-6 { "default".into() } else { String::new() },
        ]);
    }
    for k in [2usize, 4, 6] {
        let f1 = run_with(ngl_core::GlobalizerConfig { max_mention_len: k, ..base });
        rows.push(vec![
            "max_mention_len".to_string(),
            format!("{k}"),
            f2(f1),
            if k == base.max_mention_len { "default".into() } else { String::new() },
        ]);
    }
    // Batch normalization in the Phrase Embedder (§VI) requires
    // retraining the Global NER stack.
    {
        let mut cfg = Experiment::globalizer_config(
            exp.seed,
            exp.scale,
            ngl_core::PhraseLoss::Triplet { margin: 1.0 },
        );
        cfg.phrase.use_batch_norm = true;
        let trained = ngl_core::train_globalizer(&exp.local, &exp.data.d5, &cfg);
        let mut f1s = Vec::new();
        for d in exp.data.streaming_eval() {
            let mut p = ngl_core::NerGlobalizer::new(
                exp.local.clone(),
                trained.phrase.clone(),
                trained.classifier.clone(),
                base,
            );
            let toks: Vec<Vec<String>> = d.tweets.iter().map(|t| t.tokens.clone()).collect();
            p.process_batch_owned(toks);
            let out = p.finalize();
            let gold = Experiment::gold_of(d);
            f1s.push(evaluate(&gold, &out).macro_f1());
        }
        let f1 = f1s.iter().sum::<f64>() / f1s.len() as f64;
        rows.push(vec![
            "phrase batch-norm".to_string(),
            "on".to_string(),
            f2(f1),
            String::new(),
        ]);
        let base_f1 = run_with(base);
        rows.push(vec![
            "phrase batch-norm".to_string(),
            "off".to_string(),
            f2(base_f1),
            "default".to_string(),
        ]);
    }
    render_table(
        "Design-choice ablations (mean streaming macro-F1)",
        &["Parameter", "Value", "MacroF1", ""],
        &rows,
    )
}

/// Measured cost of the durable-store path: bytes appended to the WAL
/// per ingested batch (the "delta checkpoint") against the size of a
/// full state snapshot at the same point in the stream.
pub struct StoreBenchResult {
    /// Tweets streamed through the durable pipeline.
    pub tweets: usize,
    /// Batches ingested (one delta checkpoint each).
    pub batches: usize,
    /// WAL bytes appended for the final batch + finalize.
    pub delta_bytes_last: u64,
    /// Mean WAL bytes per batch across the whole run.
    pub delta_bytes_avg: f64,
    /// Size of the last full snapshot written.
    pub snapshot_bytes_last: u64,
    /// Total WAL bytes appended over the run.
    pub wal_bytes_total: u64,
    /// Full snapshots written (one every `checkpoint_every` batches).
    pub snapshots: u64,
    /// Whether the per-batch delta stayed below the snapshot size —
    /// the sublinearity claim the store exists to deliver.
    pub sublinear: bool,
    /// Final state re-encoded through the quantized (v4) snapshot codec.
    pub snapshot_q_bytes: u64,
    /// The same state through the previous full-`f32` (v3) codec.
    pub snapshot_f32_bytes: u64,
    /// Live bytes in the cold-surface spill file (quantized codec); 0
    /// when the retention policy never spills.
    pub spill_bytes: u64,
    /// Read-side page-cache hits of the spill file (0 without a pool).
    pub page_cache_hits: u64,
    /// Read-side page-cache misses of the spill file.
    pub page_cache_misses: u64,
    /// Transient IO errors absorbed by retry during the run (should be
    /// 0 on a healthy disk).
    pub io_retries: u64,
    /// Transient IO errors that exhausted the retry budget.
    pub io_retry_exhausted: u64,
}

/// Streams the eval datasets through a [`ngl_core::DurableGlobalizer`]
/// rooted at `dir` and records the delta-vs-snapshot byte costs.
/// Batches of 40 tweets; every batch is finalized so each one pays a
/// full delta checkpoint.
pub fn store_bench(
    exp: &Experiment,
    dir: &std::path::Path,
    checkpoint_every: usize,
) -> Result<StoreBenchResult, String> {
    let pipeline = ngl_core::NerGlobalizer::new(
        exp.local.clone(),
        exp.phrase.clone(),
        exp.classifier.clone(),
        ngl_core::GlobalizerConfig::default(),
    );
    let (mut durable, _) = ngl_core::DurableGlobalizer::open(pipeline, dir, checkpoint_every)
        .map_err(|e| e.to_string())?;

    let mut stream: Vec<Vec<String>> = Vec::new();
    for d in &exp.data.eval {
        stream.extend(d.tweets.iter().map(|t| t.tokens.clone()));
        if stream.len() >= 1200 {
            break;
        }
    }
    let mut batches = 0usize;
    let mut delta_total = 0u64;
    let mut delta_last = 0u64;
    for batch in stream.chunks(40) {
        durable.process_batch(batch.to_vec()).map_err(|e| e.to_string())?;
        durable.finalize().map_err(|e| e.to_string())?;
        delta_last = durable.stats().delta_bytes_last;
        delta_total += delta_last;
        batches += 1;
    }
    if durable.stats().snapshots == 0 {
        // Short quick-scale streams may finish before the first
        // scheduled snapshot; take one now so the comparison exists.
        durable.snapshot().map_err(|e| e.to_string())?;
    }
    let stats = durable.stats();
    let (snapshot_q_bytes, snapshot_f32_bytes) = durable.inner().snapshot_codec_bytes();
    Ok(StoreBenchResult {
        tweets: stream.len(),
        batches,
        delta_bytes_last: delta_last,
        delta_bytes_avg: delta_total as f64 / batches.max(1) as f64,
        snapshot_bytes_last: stats.snapshot_bytes_last,
        wal_bytes_total: stats.wal_bytes_total,
        snapshots: stats.snapshots,
        sublinear: delta_last < stats.snapshot_bytes_last,
        snapshot_q_bytes,
        snapshot_f32_bytes,
        spill_bytes: durable.spill_pool().map_or(0, |p| p.live_bytes()),
        page_cache_hits: durable.spill_pool().map_or(0, |p| p.page_cache_stats().0),
        page_cache_misses: durable.spill_pool().map_or(0, |p| p.page_cache_stats().1),
        io_retries: durable.io_stats().transient_retries,
        io_retry_exhausted: durable.io_stats().retry_exhausted,
    })
}

/// Measured cost of the two tail attacks of the persistent-executor
/// PR: per-call thread-spawn overhead on small batches (the reason the
/// worker pool exists) and the giant-surface clustering tail (the
/// reason intra-surface parallelism exists).
pub struct ParallelBenchResult {
    /// Items per submission in the spawn-overhead comparison.
    pub batch: usize,
    /// Submissions timed per side.
    pub rounds: usize,
    /// Total seconds for `rounds` submissions on the persistent pool.
    pub pooled_spawn_s: f64,
    /// Total seconds for the same work with threads spawned per call
    /// (the pre-pool executor's model).
    pub scoped_spawn_s: f64,
    /// `scoped_spawn_s / pooled_spawn_s` — how much the pool saves on
    /// small batches.
    pub spawn_speedup: f64,
    /// Mention count of the synthetic giant surface.
    pub giant_points: usize,
    /// Agglomerative clustering of the giant surface, sequential.
    pub giant_1t_s: f64,
    /// Same clustering on a 4-thread executor (chunked pair scan).
    pub giant_4t_s: f64,
    /// `giant_1t_s / giant_4t_s`.
    pub giant_speedup: f64,
    /// `std::thread::available_parallelism()` of the host — speedups
    /// are only meaningful when this is > 1.
    pub parallelism: usize,
}

/// The old executor's model, reconstructed as a baseline: spawn scoped
/// worker threads for every call, share work through an atomic cursor,
/// throw the threads away afterwards.
fn scoped_spawn_par_map(items: &[u64], threads: usize, work: &(impl Fn(u64) -> u64 + Sync)) -> u64 {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let acc = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut local = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local = local.wrapping_add(work(items[i]));
                }
                acc.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    acc.load(Ordering::Relaxed)
}

/// Runs both tail benchmarks. Self-contained — needs no trained
/// [`Experiment`], so a `parallel`-only reproduce invocation skips the
/// (expensive) experiment build entirely.
pub fn parallel_bench() -> ParallelBenchResult {
    use ngl_runtime::faults::SplitMix64;
    use ngl_runtime::Executor;
    use std::time::Instant;

    // -- spawn overhead: many small batches ------------------------------
    // The work per item is deliberately tiny; at batch ≤ 64 the
    // dominant cost of the old executor was thread spawn + join.
    const BATCH: usize = 64;
    const ROUNDS: usize = 300;
    let items: Vec<u64> = (0..BATCH as u64).collect();
    let work = |x: u64| {
        let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for _ in 0..64 {
            h ^= h >> 27;
            h = h.wrapping_mul(0x3C79_AC49_2BA7_B653);
        }
        h
    };

    let pooled = Executor::new(2);
    let wrapping_sum =
        |v: Vec<u64>| v.into_iter().fold(0u64, u64::wrapping_add);
    let mut sink = 0u64;
    // Warm-up: workers parked, caches hot, so the loop times the
    // steady state the pool is designed for.
    sink = sink.wrapping_add(wrapping_sum(pooled.par_map(items.clone(), |_, x| work(x))));
    let t = Instant::now();
    for _ in 0..ROUNDS {
        sink = sink.wrapping_add(wrapping_sum(pooled.par_map(items.clone(), |_, x| work(x))));
    }
    let pooled_spawn_s = t.elapsed().as_secs_f64();

    sink = sink.wrapping_add(scoped_spawn_par_map(&items, 2, &work));
    let t = Instant::now();
    for _ in 0..ROUNDS {
        sink = sink.wrapping_add(scoped_spawn_par_map(&items, 2, &work));
    }
    let scoped_spawn_s = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);

    // -- giant-surface clustering tail -----------------------------------
    // One skewed surface with hundreds of mentions: the O(n²) pair
    // scan inside agglomerative linkage is the finalize tail. Same
    // inputs sequentially and on 4 threads; outputs must agree
    // (the chunked scan is bitwise-identical by construction).
    const GIANT: usize = 320;
    const DIM: usize = 16;
    let mut rng = SplitMix64::new(0x61A7);
    let points: Vec<Vec<f32>> = (0..GIANT)
        .map(|_| (0..DIM).map(|_| (rng.next_below(1000) as f32) / 1000.0).collect())
        .collect();
    let threshold = 0.6;

    let t = Instant::now();
    let seq = ngl_cluster::agglomerative_exec(&points, threshold, &Executor::sequential());
    let giant_1t_s = t.elapsed().as_secs_f64();
    let par_exec = Executor::new(4);
    let t = Instant::now();
    let par = ngl_cluster::agglomerative_exec(&points, threshold, &par_exec);
    let giant_4t_s = t.elapsed().as_secs_f64();
    assert_eq!(
        seq.assignments, par.assignments,
        "parallel giant-surface clustering must be bitwise identical"
    );

    ParallelBenchResult {
        batch: BATCH,
        rounds: ROUNDS,
        pooled_spawn_s,
        scoped_spawn_s,
        spawn_speedup: scoped_spawn_s / pooled_spawn_s.max(f64::MIN_POSITIVE),
        giant_points: GIANT,
        giant_1t_s,
        giant_4t_s,
        giant_speedup: giant_1t_s / giant_4t_s.max(f64::MIN_POSITIVE),
        parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Renders the [`parallel_bench`] comparison as a two-row bench table.
pub fn parallel_table(r: &ParallelBenchResult) -> String {
    let rows = vec![
        vec![
            "spawn_overhead".to_string(),
            format!("{} items x {}", r.batch, r.rounds),
            secs(std::time::Duration::from_secs_f64(r.scoped_spawn_s)),
            secs(std::time::Duration::from_secs_f64(r.pooled_spawn_s)),
            format!("{:.2}x", r.spawn_speedup),
        ],
        vec![
            "giant_surface_tail".to_string(),
            format!("{} mentions", r.giant_points),
            secs(std::time::Duration::from_secs_f64(r.giant_1t_s)),
            secs(std::time::Duration::from_secs_f64(r.giant_4t_s)),
            format!("{:.2}x", r.giant_speedup),
        ],
    ];
    render_table(
        &format!(
            "Persistent executor: tail benchmarks (host parallelism {})",
            r.parallelism
        ),
        &["Bench", "Workload", "Baseline", "Pooled", "Speedup"],
        &rows,
    )
}

/// Renders the [`store_bench`] comparison as a one-row bench table,
/// with the quantized-vs-f32 snapshot codec sizes alongside.
pub fn store_table(r: &StoreBenchResult) -> String {
    let rows = vec![vec![
        r.tweets.to_string(),
        r.batches.to_string(),
        format!("{:.0}", r.delta_bytes_avg),
        r.delta_bytes_last.to_string(),
        r.snapshot_bytes_last.to_string(),
        format!("{:.4}", r.delta_bytes_last as f64 / r.snapshot_bytes_last.max(1) as f64),
        if r.sublinear { "yes" } else { "NO" }.to_string(),
        format!(
            "{}/{} ({:.2})",
            r.snapshot_q_bytes,
            r.snapshot_f32_bytes,
            r.snapshot_q_bytes as f64 / r.snapshot_f32_bytes.max(1) as f64
        ),
        r.spill_bytes.to_string(),
        format!("{}/{}", r.page_cache_hits, r.page_cache_misses),
        format!("{}/{}", r.io_retries, r.io_retry_exhausted),
    ]];
    render_table(
        "Durable store: delta WAL bytes per batch vs full snapshot",
        &[
            "Tweets", "Batches", "AvgDeltaB", "LastDeltaB", "SnapshotB", "Ratio", "Sublinear",
            "SnapQ/F32", "SpillB", "PgHit/Miss", "IoRetry",
        ],
        &rows,
    )
}

/// Measured cost of the fused-kernel PR's two claims: the one-vs-many
/// cosine block scan against the per-pair naive loop it replaced, and
/// the byte footprint of i8-quantized embedding storage against f32.
pub struct KernelBenchResult {
    /// Rows in the block scan.
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Full scans timed per side.
    pub reps: usize,
    /// Total seconds for `reps` naive per-pair scans (dot + two norms
    /// recomputed per pair in plain scalar loops — the pre-kernel code).
    pub naive_scan_s: f64,
    /// Total seconds for `reps` [`ngl_nn::kernels::cosine_best_of`]
    /// block scans under the dispatched (SIMD-capable) kernels.
    pub block_scan_s: f64,
    /// `naive_scan_s / block_scan_s`.
    pub kernel_speedup: f64,
    /// Quantized payload bytes for all rows (4-byte scale + 1 B/elem).
    pub quantized_bytes: u64,
    /// The same rows stored as raw `f32`.
    pub f32_bytes: u64,
    /// `quantized_bytes / f32_bytes` — the at-rest shrink factor.
    pub quantized_bytes_ratio: f64,
    /// `std::thread::available_parallelism()` of the host; timing-based
    /// speedups are only asserted on multicore hosts (CI convention).
    pub parallelism: usize,
}

/// Runs the kernel benchmarks. Self-contained — needs no trained
/// [`Experiment`], so a `kernels`-only reproduce invocation skips the
/// (expensive) experiment build entirely.
pub fn kernel_bench() -> KernelBenchResult {
    use ngl_nn::kernels::{self, QuantizedVec};
    use ngl_runtime::faults::SplitMix64;
    use std::time::Instant;

    const ROWS: usize = 512;
    const DIM: usize = 64;
    const REPS: usize = 2000;
    let mut rng = SplitMix64::new(0xD07);
    let gen = |rng: &mut SplitMix64| -> Vec<f32> {
        (0..DIM).map(|_| (rng.next_below(2000) as f32) / 1000.0 - 1.0).collect()
    };
    let query = gen(&mut rng);
    let rows: Vec<Vec<f32>> = (0..ROWS).map(|_| gen(&mut rng)).collect();

    // The pre-kernel consumer pattern: an independent cosine per pair,
    // each recomputing both norms in a plain scalar loop.
    let naive_cosine = |a: &[f32], b: &[f32]| -> f32 {
        let (mut d, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
        for (x, y) in a.iter().zip(b) {
            d += x * y;
            na += x * x;
            nb += y * y;
        }
        (d / (na.sqrt() * nb.sqrt()).max(1e-12)).clamp(-1.0, 1.0)
    };
    let naive_scan = |q: &[f32], rows: &[Vec<f32>]| -> (usize, f32) {
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, r) in rows.iter().enumerate() {
            let s = naive_cosine(q, r);
            if s > best.1 {
                best = (i, s);
            }
        }
        best
    };

    // Warm both sides once, and check they agree on the winner before
    // trusting the timings.
    let (ni, ns) = naive_scan(&query, &rows);
    let (bi, bs) = kernels::cosine_best_of(&query, &rows).expect("non-empty scan");
    assert_eq!(ni, bi, "block scan and naive scan must pick the same row");
    assert!((ns - bs).abs() < 1e-5, "similarities diverged: {ns} vs {bs}");

    let mut sink = 0.0f32;
    let t = Instant::now();
    for _ in 0..REPS {
        sink += naive_scan(std::hint::black_box(&query), std::hint::black_box(&rows)).1;
    }
    let naive_scan_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..REPS {
        sink += kernels::cosine_best_of(
            std::hint::black_box(&query),
            std::hint::black_box(&rows),
        )
        .expect("non-empty scan")
        .1;
    }
    let block_scan_s = t.elapsed().as_secs_f64();
    std::hint::black_box(sink);

    let quantized_bytes: u64 =
        rows.iter().map(|r| QuantizedVec::quantize(r).payload_bytes() as u64).sum();
    let f32_bytes = (ROWS * DIM * 4) as u64;

    KernelBenchResult {
        rows: ROWS,
        dim: DIM,
        reps: REPS,
        naive_scan_s,
        block_scan_s,
        kernel_speedup: naive_scan_s / block_scan_s.max(f64::MIN_POSITIVE),
        quantized_bytes,
        f32_bytes,
        quantized_bytes_ratio: quantized_bytes as f64 / f32_bytes.max(1) as f64,
        parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Renders the [`kernel_bench`] comparison as a two-row bench table.
pub fn kernel_table(r: &KernelBenchResult) -> String {
    let rows = vec![
        vec![
            "cosine_block_scan".to_string(),
            format!("{}x{} x {}", r.rows, r.dim, r.reps),
            secs(std::time::Duration::from_secs_f64(r.naive_scan_s)),
            secs(std::time::Duration::from_secs_f64(r.block_scan_s)),
            format!("{:.2}x", r.kernel_speedup),
        ],
        vec![
            "quantized_storage".to_string(),
            format!("{} rows x {} dims", r.rows, r.dim),
            format!("{} B", r.f32_bytes),
            format!("{} B", r.quantized_bytes),
            format!("{:.3} of f32", r.quantized_bytes_ratio),
        ],
    ];
    render_table(
        &format!("Fused kernels: block scan & quantized storage (host parallelism {})", r.parallelism),
        &["Bench", "Workload", "Baseline", "Fused", "Gain"],
        &rows,
    )
}

/// The serving-layer SLO benchmark of [`serve_bench`]: the same
/// Zipfian client burst replayed against a batching server
/// (`max_batch` 64) and a one-tweet-per-batch server, with per-side
/// throughput and ingest-to-ack latency percentiles.
pub struct ServeBenchResult {
    /// Concurrent client threads per side.
    pub writers: usize,
    /// Requests per writer.
    pub requests: usize,
    /// Tweets per request body.
    pub lines: usize,
    /// Total tweets per side (`writers * requests * lines`).
    pub tweets: usize,
    /// Distinct Zipf-sampled entity surfaces in the burst.
    pub surfaces: usize,
    /// Wall-clock seconds for the batching side.
    pub batched_s: f64,
    /// Tweets per second, batching side.
    pub batched_rps: f64,
    /// Ingest-to-ack latency percentiles (µs), batching side.
    pub batched_p50_us: u64,
    pub batched_p99_us: u64,
    /// Batches the batching side committed (coalescing evidence).
    pub batched_batches: u64,
    /// Largest batch it coalesced.
    pub batched_max_batch: u64,
    /// Wall-clock seconds for the one-tweet-per-batch side.
    pub single_s: f64,
    /// Tweets per second, one-tweet-per-batch side.
    pub single_rps: f64,
    /// Ingest-to-ack latency percentiles (µs), one-per-batch side.
    pub single_p50_us: u64,
    pub single_p99_us: u64,
    /// `batched_rps / single_rps` — what server-side coalescing buys.
    pub batching_speedup: f64,
    /// Host parallelism; speedups are only asserted on multicore.
    pub parallelism: usize,
}

/// One side of the serving benchmark: a fresh store + server with the
/// given `max_batch`, hit by the deterministic Zipfian burst.
struct ServeSide {
    elapsed_s: f64,
    p50_us: u64,
    p99_us: u64,
    batches: u64,
    max_batch: u64,
}

const SERVE_WRITERS: usize = 4;
const SERVE_REQUESTS: usize = 16;
const SERVE_LINES: usize = 8;
const SERVE_SURFACES: usize = 64;

/// Zipf-like (log-uniform) surface index in `0..n` — a heavy head and
/// a long tail, the shape of a trending-entity burst.
fn zipf_index(rng: &mut ngl_runtime::faults::SplitMix64, n: usize) -> usize {
    let r = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    ((n as f64).powf(r) as usize).min(n - 1)
}

fn serve_burst_tweet(rng: &mut ngl_runtime::faults::SplitMix64, id: u64) -> String {
    let k = zipf_index(rng, SERVE_SURFACES);
    let places = ["Paris", "Oslo", "Lima", "Cairo"];
    format!(
        "{id}\tCelebrity{k} Star{k} trending in {} now t{id}",
        places[(rng.next_u64() % 4) as usize]
    )
}

fn serve_side(max_batch: usize, seed: u64) -> ServeSide {
    use ngl_core::{DurableGlobalizer, GlobalizerConfig, PoolPolicy};
    use ngl_serve::{client::Client, devstack, ServeConfig, Server};

    let dir = std::env::temp_dir().join(format!(
        "ngl-serve-bench-{}-{max_batch}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = GlobalizerConfig { pool: PoolPolicy::Shared, ..Default::default() };
    let (durable, recovery) =
        DurableGlobalizer::open(devstack::pipeline(cfg), &dir, 1_000_000).expect("open store");
    let server = Server::start(
        durable,
        recovery,
        ServeConfig {
            max_batch,
            max_delay_ms: 2,
            queue_cap: 4096,
            // Finalize cadence is per *batch* on both sides — part of
            // what coalescing amortizes.
            finalize_every: 16,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr().to_string();

    let t = std::time::Instant::now();
    let handles: Vec<_> = (0..SERVE_WRITERS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut rng =
                    ngl_runtime::faults::SplitMix64::new(seed ^ (w as u64).wrapping_mul(0x9E37));
                let mut client = Client::new(addr);
                for r in 0..SERVE_REQUESTS {
                    let body: String = (0..SERVE_LINES)
                        .map(|l| {
                            let id = (w * 1_000_000 + r * SERVE_LINES + l) as u64;
                            format!("{}\n", serve_burst_tweet(&mut rng, id))
                        })
                        .collect();
                    let (status, body) = client.ingest(&body).expect("ingest");
                    assert_eq!(status, 200, "bench burst must not shed: {body}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("bench writer");
    }
    let elapsed_s = t.elapsed().as_secs_f64();

    let stats = server.stats();
    let (p50_us, p99_us) = stats.ack_latency_percentiles_us();
    let accepted = stats.accepted.load(std::sync::atomic::Ordering::Relaxed);
    let tweets = (SERVE_WRITERS * SERVE_REQUESTS * SERVE_LINES) as u64;
    assert_eq!(accepted, tweets, "every bench tweet must be acked");
    let batches = stats.batches.load(std::sync::atomic::Ordering::Relaxed);
    let max_batch = stats.max_batch.load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    ServeSide { elapsed_s, p50_us, p99_us, batches, max_batch }
}

/// Runs the Zipfian burst against the batching and one-tweet-per-batch
/// servers and reports throughput + ack-latency SLO rows.
pub fn serve_bench() -> ServeBenchResult {
    let tweets = SERVE_WRITERS * SERVE_REQUESTS * SERVE_LINES;
    let batched = serve_side(64, 0x5E47E);
    let single = serve_side(1, 0x5E47E);
    let batched_rps = tweets as f64 / batched.elapsed_s.max(f64::MIN_POSITIVE);
    let single_rps = tweets as f64 / single.elapsed_s.max(f64::MIN_POSITIVE);
    ServeBenchResult {
        writers: SERVE_WRITERS,
        requests: SERVE_REQUESTS,
        lines: SERVE_LINES,
        tweets,
        surfaces: SERVE_SURFACES,
        batched_s: batched.elapsed_s,
        batched_rps,
        batched_p50_us: batched.p50_us,
        batched_p99_us: batched.p99_us,
        batched_batches: batched.batches,
        batched_max_batch: batched.max_batch,
        single_s: single.elapsed_s,
        single_rps,
        single_p50_us: single.p50_us,
        single_p99_us: single.p99_us,
        batching_speedup: batched_rps / single_rps.max(f64::MIN_POSITIVE),
        parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Renders the [`serve_bench`] SLO comparison as a two-row table.
pub fn serve_table(r: &ServeBenchResult) -> String {
    let rows = vec![
        vec![
            "batched_ingest".to_string(),
            format!("{} tweets, max_batch 64", r.tweets),
            format!("{:.0} tw/s", r.batched_rps),
            format!("{} us", r.batched_p50_us),
            format!("{} us", r.batched_p99_us),
            format!("{:.2}x", r.batching_speedup),
        ],
        vec![
            "one_per_batch".to_string(),
            format!("{} tweets, max_batch 1", r.tweets),
            format!("{:.0} tw/s", r.single_rps),
            format!("{} us", r.single_p50_us),
            format!("{} us", r.single_p99_us),
            "1.00x".to_string(),
        ],
    ];
    render_table(
        &format!(
            "Serving layer: Zipfian burst, {} writers x {} reqs x {} lines \
             (host parallelism {})",
            r.writers, r.requests, r.lines, r.parallelism
        ),
        &["Bench", "Workload", "Throughput", "p50 ack", "p99 ack", "Speedup"],
        &rows,
    )
}

/// The sharded-serving benchmark of [`shard_bench`]: the same Zipfian
/// client burst replayed against a 1-shard and an N-shard server, with
/// per-side throughput and ingest-to-ack latency percentiles.
pub struct ShardBenchResult {
    /// Concurrent client threads per side.
    pub writers: usize,
    /// Requests per writer.
    pub requests: usize,
    /// Tweets per request body.
    pub lines: usize,
    /// Total tweets per side (`writers * requests * lines`).
    pub tweets: usize,
    /// Shard count on the sharded side.
    pub shards: u32,
    /// Wall-clock seconds for the 1-shard side.
    pub single_s: f64,
    /// Tweets per second, 1-shard side.
    pub single_rps: f64,
    /// Ingest-to-ack latency percentiles (µs), 1-shard side.
    pub single_p50_us: u64,
    pub single_p99_us: u64,
    /// Wall-clock seconds for the N-shard side.
    pub sharded_s: f64,
    /// Tweets per second, N-shard side.
    pub sharded_rps: f64,
    /// Ingest-to-ack latency percentiles (µs), N-shard side.
    pub sharded_p50_us: u64,
    pub sharded_p99_us: u64,
    /// `sharded_rps / single_rps` — what ownership partitioning buys.
    pub shard_speedup: f64,
    /// Host parallelism; speedups are only asserted on multicore.
    pub parallelism: usize,
}

/// One side of the sharding benchmark: a fresh sharded store + server
/// with the given shard count, hit by the deterministic Zipfian burst.
fn shard_side(shards: u32, seed: u64) -> ServeSide {
    use ngl_core::{GlobalizerConfig, PoolPolicy, ShardedGlobalizer};
    use ngl_serve::{client::Client, devstack, ServeConfig, Server};

    let dir = std::env::temp_dir().join(format!(
        "ngl-shard-bench-{}-{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = GlobalizerConfig { pool: PoolPolicy::Shared, ..Default::default() };
    let (sharded, recovery) =
        ShardedGlobalizer::open(devstack::pipeline(cfg), &dir, 1_000_000, shards)
            .expect("open sharded store");
    let server = Server::start_sharded(
        sharded,
        recovery,
        ServeConfig {
            max_batch: 64,
            max_delay_ms: 2,
            queue_cap: 4096,
            finalize_every: 16,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr().to_string();

    let t = std::time::Instant::now();
    let handles: Vec<_> = (0..SERVE_WRITERS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut rng =
                    ngl_runtime::faults::SplitMix64::new(seed ^ (w as u64).wrapping_mul(0x9E37));
                let mut client = Client::new(addr);
                for r in 0..SERVE_REQUESTS {
                    let body: String = (0..SERVE_LINES)
                        .map(|l| {
                            let id = (w * 1_000_000 + r * SERVE_LINES + l) as u64;
                            format!("{}\n", serve_burst_tweet(&mut rng, id))
                        })
                        .collect();
                    let (status, body) = client.ingest(&body).expect("ingest");
                    assert_eq!(status, 200, "bench burst must not shed: {body}");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("bench writer");
    }
    let elapsed_s = t.elapsed().as_secs_f64();

    let stats = server.stats();
    let (p50_us, p99_us) = stats.ack_latency_percentiles_us();
    let accepted = stats.accepted.load(std::sync::atomic::Ordering::Relaxed);
    let tweets = (SERVE_WRITERS * SERVE_REQUESTS * SERVE_LINES) as u64;
    assert_eq!(accepted, tweets, "every bench tweet must be acked");
    let batches = stats.batches.load(std::sync::atomic::Ordering::Relaxed);
    let max_batch = stats.max_batch.load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    ServeSide { elapsed_s, p50_us, p99_us, batches, max_batch }
}

/// Runs the Zipfian burst against a 1-shard and a `shards`-shard server
/// and reports throughput + ack-latency rows.
pub fn shard_bench(shards: u32) -> ShardBenchResult {
    let tweets = SERVE_WRITERS * SERVE_REQUESTS * SERVE_LINES;
    let single = shard_side(1, 0x5E47E);
    let sharded = shard_side(shards, 0x5E47E);
    let single_rps = tweets as f64 / single.elapsed_s.max(f64::MIN_POSITIVE);
    let sharded_rps = tweets as f64 / sharded.elapsed_s.max(f64::MIN_POSITIVE);
    ShardBenchResult {
        writers: SERVE_WRITERS,
        requests: SERVE_REQUESTS,
        lines: SERVE_LINES,
        tweets,
        shards,
        single_s: single.elapsed_s,
        single_rps,
        single_p50_us: single.p50_us,
        single_p99_us: single.p99_us,
        sharded_s: sharded.elapsed_s,
        sharded_rps,
        sharded_p50_us: sharded.p50_us,
        sharded_p99_us: sharded.p99_us,
        shard_speedup: sharded_rps / single_rps.max(f64::MIN_POSITIVE),
        parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Renders the [`shard_bench`] comparison as a two-row table.
pub fn shard_table(r: &ShardBenchResult) -> String {
    let rows = vec![
        vec![
            format!("shards_{}", r.shards),
            format!("{} tweets, {} shards", r.tweets, r.shards),
            format!("{:.0} tw/s", r.sharded_rps),
            format!("{} us", r.sharded_p50_us),
            format!("{} us", r.sharded_p99_us),
            format!("{:.2}x", r.shard_speedup),
        ],
        vec![
            "shards_1".to_string(),
            format!("{} tweets, 1 shard", r.tweets),
            format!("{:.0} tw/s", r.single_rps),
            format!("{} us", r.single_p50_us),
            format!("{} us", r.single_p99_us),
            "1.00x".to_string(),
        ],
    ];
    render_table(
        &format!(
            "Sharded serving: Zipfian burst, {} writers x {} reqs x {} lines \
             (host parallelism {})",
            r.writers, r.requests, r.lines, r.parallelism
        ),
        &["Bench", "Workload", "Throughput", "p50 ack", "p99 ack", "Speedup"],
        &rows,
    )
}
