//! # ngl-bench
//!
//! The experiment harness: trains every system once and regenerates
//! every table and figure of the paper's evaluation (§VI). The
//! `reproduce` binary drives it; the Criterion benches under `benches/`
//! measure the hot kernels (CTrie scan, clustering, encoding, phrase
//! embedding, pipeline stages) that back the Table IV time columns.
//!
//! | Paper artifact | Harness entry |
//! |---|---|
//! | Table I (dataset stats) | [`tables::table1`] |
//! | Table II (embedder training) | [`tables::table2`] |
//! | Table III (vs local NER systems) | [`tables::table3`] |
//! | Table IV (local→global ablation + time) | [`tables::table4`] |
//! | Table V (vs global NER baselines) | [`tables::table5`] |
//! | Figure 3 (component ablation) | [`tables::fig3`] |
//! | Figure 4 (frequency vs recall) | [`tables::fig4`] |
//! | §I case study | [`tables::case_study`] |
//! | §VI-C error analysis | [`tables::error_analysis`] |
//! | §VI-D EMD gains | [`tables::emd_gains`] |

pub mod experiment;
pub mod fmt;
pub mod tables;

pub use experiment::{Experiment, PipelineRun, Scale};
