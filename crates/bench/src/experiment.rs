//! One-time setup shared by every experiment: generate the data
//! universe, fine-tune the Local NER encoder, train the Global NER
//! components on D5, and train the baselines.

use ngl_baselines::{
    AguilarConfig, AguilarTagger, AkbikConfig, AkbikTagger, BertNer, DoclNer, HireConfig, HireNer,
};
use ngl_core::{
    train_globalizer, AblationMode, EntityClassifier, GlobalizerConfig,
    GlobalizerTrainingConfig, GlobalizerTrainingReport, NerGlobalizer, PhraseEmbedder,
    PhraseLoss, StageTimings,
};
use ngl_corpus::{Dataset, StandardDatasets};
use ngl_encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ngl_text::Span;

/// Experiment scale: full reproduces the paper's dataset sizes; quick is
/// a miniature for tests and smoke runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Fraction of each dataset's tweets used.
    pub dataset_fraction: f64,
    /// Embedding dimension of the whole stack.
    pub dim: usize,
    /// Local NER fine-tuning epochs.
    pub encoder_epochs: usize,
    /// Phrase-embedder epoch cap.
    pub phrase_epochs: usize,
    /// Entity-classifier epoch cap.
    pub classifier_epochs: usize,
    /// Triplet-mining cap.
    pub max_triplets: usize,
}

impl Scale {
    /// Paper-scale run.
    pub fn full() -> Self {
        Self {
            dataset_fraction: 1.0,
            dim: 32,
            encoder_epochs: 8,
            phrase_epochs: 40,
            classifier_epochs: 120,
            max_triplets: 40_000,
        }
    }

    /// Miniature run for tests/smoke (~20× faster).
    pub fn quick() -> Self {
        Self {
            dataset_fraction: 0.12,
            dim: 16,
            encoder_epochs: 4,
            phrase_epochs: 15,
            classifier_epochs: 40,
            max_triplets: 4_000,
        }
    }
}

/// Result of running the pipeline over one dataset.
pub struct PipelineRun {
    /// Local NER spans per tweet.
    pub local: Vec<Vec<Span>>,
    /// Final pipeline spans per tweet.
    pub global: Vec<Vec<Span>>,
    /// Per-stage wall clock.
    pub timings: StageTimings,
}

/// Everything trained, ready to answer every table.
pub struct Experiment {
    /// The generated data universe.
    pub data: StandardDatasets,
    /// The fine-tuned Local NER encoder (BERTweet stand-in).
    pub local: TokenEncoder,
    /// The trained Phrase Embedder (triplet variant — production).
    pub phrase: PhraseEmbedder,
    /// The trained Entity Classifier.
    pub classifier: EntityClassifier,
    /// Table II row for the triplet variant.
    pub triplet_report: GlobalizerTrainingReport,
    /// Scale the experiment was built at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

impl Experiment {
    /// Builds the experiment: generates data and trains the local
    /// encoder plus the Global NER components.
    pub fn build(seed: u64, scale: Scale) -> Self {
        let mut data = StandardDatasets::generate(seed);
        if scale.dataset_fraction < 1.0 {
            let shrink = |d: &mut Dataset| {
                let keep =
                    ((d.tweets.len() as f64) * scale.dataset_fraction).ceil().max(40.0) as usize;
                d.tweets.truncate(keep.min(d.tweets.len()));
            };
            shrink(&mut data.local_train);
            shrink(&mut data.generic_train);
            shrink(&mut data.d5);
            for d in &mut data.eval {
                shrink(d);
            }
        }

        let enc_cfg = Self::encoder_config(seed, scale);
        let mut local = TokenEncoder::new(enc_cfg);
        train_encoder(
            &mut local,
            &data.local_train,
            &TrainConfig { epochs: scale.encoder_epochs, seed: seed ^ 0xE7C, ..Default::default() },
        );

        let cfg = Self::globalizer_config(seed, scale, PhraseLoss::Triplet { margin: 1.0 });
        let trained = train_globalizer(&local, &data.d5, &cfg);

        Self {
            data,
            local,
            phrase: trained.phrase,
            classifier: trained.classifier,
            triplet_report: trained.report,
            scale,
            seed,
        }
    }

    /// The encoder config this experiment uses.
    pub fn encoder_config(seed: u64, scale: Scale) -> EncoderConfig {
        EncoderConfig {
            embed_dim: (scale.dim * 3 / 4).max(8),
            hidden_dim: scale.dim * 3 / 2,
            out_dim: scale.dim,
            seed: seed ^ 0xE0C0,
            ..EncoderConfig::default()
        }
    }

    /// Global NER training config for a given objective.
    pub fn globalizer_config(
        seed: u64,
        scale: Scale,
        loss: PhraseLoss,
    ) -> GlobalizerTrainingConfig {
        let mut cfg = GlobalizerTrainingConfig::for_dim(scale.dim);
        cfg.phrase.loss = loss;
        cfg.phrase.max_epochs = scale.phrase_epochs;
        cfg.phrase.seed = seed ^ 0xF0A;
        cfg.classifier.max_epochs = scale.classifier_epochs;
        cfg.classifier.seed = seed ^ 0xF0B;
        cfg.max_triplets = scale.max_triplets;
        cfg.seed = seed ^ 0xF0C;
        cfg
    }

    /// Re-trains the Global NER stack with the soft-NN objective
    /// (the second Table II row).
    pub fn train_soft_nn_variant(&self) -> GlobalizerTrainingReport {
        self.train_soft_nn_stack().0
    }

    /// Soft-NN variant with its trained components, for pipeline-level
    /// objective comparisons.
    pub fn train_soft_nn_stack(
        &self,
    ) -> (GlobalizerTrainingReport, (PhraseEmbedder, EntityClassifier)) {
        let cfg = Self::globalizer_config(
            self.seed,
            self.scale,
            PhraseLoss::SoftNn { temperature: 0.3 },
        );
        let trained = train_globalizer(&self.local, &self.data.d5, &cfg);
        (trained.report, (trained.phrase, trained.classifier))
    }

    /// Runs the NER Globalizer over a dataset in the given ablation
    /// mode, processing the stream in batches of 500 tweets.
    pub fn run_pipeline(&self, dataset: &Dataset, mode: AblationMode) -> PipelineRun {
        let mut pipeline = NerGlobalizer::new(
            self.local.clone(),
            self.phrase.clone(),
            self.classifier.clone(),
            GlobalizerConfig { ablation: mode, ..Default::default() },
        );
        for batch in dataset.batches(500) {
            let tokens: Vec<Vec<String>> = batch.iter().map(|t| t.tokens.clone()).collect();
            pipeline.process_batch_owned(tokens);
        }
        let global = pipeline.finalize();
        PipelineRun {
            local: pipeline.local_outputs(),
            global,
            timings: pipeline.timings(),
        }
    }

    /// Trains the Aguilar CRF baseline on the tweet training corpus.
    pub fn train_aguilar(&self) -> AguilarTagger {
        AguilarTagger::train(
            &self.data.local_train,
            AguilarConfig { seed: self.seed ^ 0xA6, ..Default::default() },
        )
    }

    /// Trains the domain-shifted BERT-NER baseline.
    pub fn train_bert_ner(&self) -> BertNer {
        BertNer::train(
            &self.data.generic_train,
            Self::encoder_config(self.seed ^ 0xBB, self.scale),
            &TrainConfig {
                epochs: self.scale.encoder_epochs,
                seed: self.seed ^ 0xBE,
                ..Default::default()
            },
        )
    }

    /// Trains the Akbik pooled-embedding baseline (shares the local
    /// encoder, retrains the head).
    pub fn train_akbik(&self) -> AkbikTagger {
        AkbikTagger::train(
            self.local.clone(),
            &self.data.local_train,
            AkbikConfig { seed: self.seed ^ 0xAA, ..Default::default() },
        )
    }

    /// Trains the HIRE-NER baseline.
    pub fn train_hire(&self) -> HireNer {
        HireNer::train(
            self.local.clone(),
            &self.data.local_train,
            HireConfig { seed: self.seed ^ 0x44, ..Default::default() },
        )
    }

    /// Wraps the local encoder with DocL-NER label refinement.
    pub fn make_docl(&self) -> DoclNer<TokenEncoder> {
        DoclNer::new(self.local.clone())
    }

    /// Gold spans per tweet of a dataset.
    pub fn gold_of(dataset: &Dataset) -> Vec<Vec<Span>> {
        dataset.tweets.iter().map(|t| t.gold_spans()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngl_eval::evaluate;

    /// A quick-scale end-to-end smoke test of the harness: the full
    /// Globalizer must beat its own local stage on a streaming dataset —
    /// the paper's central claim in miniature.
    #[test]
    fn quick_experiment_reproduces_the_headline_direction() {
        let exp = Experiment::build(2024, Scale::quick());
        let d2 = exp.data.eval_by_name("D2").expect("D2 exists");
        let gold = Experiment::gold_of(d2);
        let run = exp.run_pipeline(d2, AblationMode::FullGlobal);
        let local_f1 = evaluate(&gold, &run.local).macro_f1();
        let global_f1 = evaluate(&gold, &run.global).macro_f1();
        assert!(
            global_f1 > local_f1,
            "global ({global_f1:.3}) must beat local ({local_f1:.3})"
        );
        assert!(run.timings.local.as_nanos() > 0);
        assert!(run.timings.global.as_nanos() > 0);
    }
}
