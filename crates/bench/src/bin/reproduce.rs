//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [--quick] [--seed N] [section ...]
//! sections: table1 table2 table3 table4 table5 fig3 fig4
//!           casestudy errors emd ablations; "all" (default) runs the
//!           paper artifacts (ablations must be requested explicitly)
//! ```

use std::time::Instant;

use ngl_bench::{tables, Experiment, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2024);
    let mut sections: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .cloned()
        .collect();
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    const KNOWN: &[&str] = &[
        "all", "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "casestudy",
        "errors", "emd", "ablations",
    ];
    if let Some(bad) = sections.iter().find(|s| !KNOWN.contains(&s.as_str())) {
        eprintln!("unknown section {bad:?}; known sections: {}", KNOWN.join(" "));
        std::process::exit(2);
    }
    let want = |s: &str| sections.iter().any(|x| x == s || x == "all");

    let scale = if quick { Scale::quick() } else { Scale::full() };
    eprintln!(
        "[reproduce] building experiment (seed {seed}, {} scale)...",
        if quick { "quick" } else { "full" }
    );
    let t0 = Instant::now();
    let exp = Experiment::build(seed, scale);
    eprintln!("[reproduce] setup done in {:.1}s", t0.elapsed().as_secs_f64());

    if want("table1") {
        println!("{}", tables::table1(&exp));
    }
    if want("table2") {
        eprintln!("[reproduce] training soft-NN variant for Table II...");
        println!("{}", tables::table2(&exp));
    }

    let needs_runs = ["table3", "table4", "table5", "fig4", "casestudy", "errors", "emd"]
        .iter()
        .any(|s| want(s));
    let runs = if needs_runs {
        eprintln!("[reproduce] running full pipeline over all eval datasets...");
        let t = Instant::now();
        let r = tables::run_all(&exp);
        eprintln!("[reproduce] pipeline runs done in {:.1}s", t.elapsed().as_secs_f64());
        Some(r)
    } else {
        None
    };

    if want("table3") {
        eprintln!("[reproduce] training local baselines (Aguilar, BERT-NER)...");
        let aguilar = exp.train_aguilar();
        let bert = exp.train_bert_ner();
        println!(
            "{}",
            tables::table3(&exp, runs.as_ref().expect("runs"), &aguilar, &bert)
        );
    }
    if want("table4") {
        println!("{}", tables::table4(&exp, runs.as_ref().expect("runs")));
    }
    if want("table5") {
        eprintln!("[reproduce] training global baselines (Akbik, HIRE, DocL)...");
        let akbik = exp.train_akbik();
        let hire = exp.train_hire();
        let docl = exp.make_docl();
        println!(
            "{}",
            tables::table5(&exp, runs.as_ref().expect("runs"), &akbik, &hire, &docl)
        );
    }
    if want("fig3") {
        eprintln!("[reproduce] running ablation variants for Figure 3...");
        println!("{}", tables::fig3(&exp));
    }
    if want("fig4") {
        println!("{}", tables::fig4(&exp, runs.as_ref().expect("runs")));
    }
    if want("casestudy") {
        println!("{}", tables::case_study(&exp, runs.as_ref().expect("runs")));
    }
    if want("errors") {
        println!("{}", tables::error_analysis(&exp, runs.as_ref().expect("runs")));
    }
    if want("emd") {
        println!("{}", tables::emd_gains(&exp, runs.as_ref().expect("runs")));
    }
    if want("ablations") {
        eprintln!("[reproduce] sweeping design-choice ablations...");
        println!("{}", tables::ablations(&exp));
    }
    eprintln!("[reproduce] total {:.1}s", t0.elapsed().as_secs_f64());
}
