//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [--quick] [--seed N] [--timings-json PATH]
//!           [--store-dir PATH] [--checkpoint-every N] [section ...]
//! sections: table1 table2 table3 table4 table5 fig3 fig4
//!           casestudy errors emd ablations store parallel kernels
//!           serve shard;
//!           "all" (default) runs the paper artifacts (ablations must
//!           be requested explicitly)
//! ```
//!
//! `--timings-json` additionally writes the per-stage pipeline
//! wall-clock (local, extract+embed, cluster, classify, global) of
//! every eval dataset to the given path (conventionally
//! `BENCH_pipeline.json`), forcing the pipeline runs even when no
//! requested section needs them.
//!
//! The `store` section (also forced by `--store-dir` or
//! `--timings-json`) streams the eval datasets through the durable
//! store and prints a bench row comparing WAL delta bytes per batch
//! against the full-snapshot size; with `--store-dir` the WAL,
//! snapshots, and spill file land at the given path (so the store is
//! exercisable end-to-end and inspectable with `ngl recover`),
//! otherwise in a throwaway temp dir. `--checkpoint-every` sets the
//! snapshot cadence (default 8 batches). Past ~1k streamed tweets the
//! run *asserts* the delta stays below the snapshot size.
//!
//! The `parallel` section (also forced by `--timings-json`) runs the
//! persistent-executor tail benchmarks — per-call spawn overhead vs
//! the worker pool, and the giant-surface clustering tail at 1 vs 4
//! threads — and needs no trained experiment: invoked alone it skips
//! the experiment build entirely. The rows land in the timings JSON
//! under `"parallel"` (conventionally uploaded as
//! `BENCH_parallel.json`).
//!
//! The `kernels` section (also forced by `--timings-json`) runs the
//! fused-kernel benchmarks — the one-vs-many cosine block scan against
//! the naive per-pair loop, and the i8-quantized storage footprint
//! against f32 — and likewise needs no trained experiment. The rows
//! land in the timings JSON under `"kernels"` (conventionally uploaded
//! as `BENCH_kernels.json`). The run *asserts* the quantized payload
//! stays ≤ 0.30 of f32, and (on multicore hosts only, where timings
//! are trustworthy) that the block scan beats the naive loop.
//!
//! The `serve` section (also forced by `--timings-json`) runs the
//! serving-layer SLO benchmark — the same Zipfian client burst against
//! a batching (`max_batch` 64) and a one-tweet-per-batch server, with
//! throughput and p50/p99 ingest-to-ack latency per side — and
//! likewise needs no trained experiment. The rows land in the timings
//! JSON under `"serve"` (conventionally uploaded as
//! `BENCH_serve.json`). On multicore hosts the run *asserts* batching
//! delivers ≥ 2x the one-tweet-per-batch throughput.
//!
//! The `shard` section (also forced by `--timings-json`) runs the
//! sharded-serving benchmark — the same Zipfian client burst against a
//! 1-shard and a 4-shard server, with throughput and p50/p99
//! ingest-to-ack latency per side. The rows land in the timings JSON
//! under `"shard"` (conventionally uploaded as `BENCH_shard.json`). On
//! multicore hosts the run *asserts* 4 shards deliver ≥ 1.5x the
//! 1-shard throughput; single-core hosts log the ratio and skip the
//! assert (replicated ingest has nothing to parallelize against).

use std::time::Instant;

use ngl_bench::{tables, Experiment, Scale};

/// Hand-rolled JSON emission (the workspace deliberately has no JSON
/// dependency); dataset names are alphanumeric, so no escaping needed.
#[allow(clippy::too_many_arguments)] // one slot per optional bench section
fn write_timings_json(
    path: &str,
    exp: &Experiment,
    runs: &tables::EvalRuns,
    store: Option<&tables::StoreBenchResult>,
    parallel: Option<&tables::ParallelBenchResult>,
    kernels: Option<&tables::KernelBenchResult>,
    serve: Option<&tables::ServeBenchResult>,
    shard: Option<&tables::ShardBenchResult>,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"datasets\": [\n",
        ngl_runtime::Executor::from_env().threads()
    ));
    for (i, (d, run)) in exp.data.eval.iter().zip(&runs.full).enumerate() {
        let t = &run.timings;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"local_s\": {:.6}, \"extract_s\": {:.6}, \
             \"cluster_s\": {:.6}, \"classify_s\": {:.6}, \"global_s\": {:.6}}}{}\n",
            d.name,
            t.local.as_secs_f64(),
            t.extract.as_secs_f64(),
            t.cluster.as_secs_f64(),
            t.classify.as_secs_f64(),
            t.global.as_secs_f64(),
            if i + 1 == runs.full.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if let Some(s) = store {
        out.push_str(&format!(
            ",\n  \"store\": {{\"tweets\": {}, \"batches\": {}, \
             \"delta_bytes_avg\": {:.1}, \"delta_bytes_last\": {}, \
             \"snapshot_bytes_last\": {}, \"wal_bytes_total\": {}, \
             \"snapshots\": {}, \"sublinear\": {}, \
             \"snapshot_q_bytes\": {}, \"snapshot_f32_bytes\": {}, \
             \"spill_bytes\": {}, \"page_cache_hits\": {}, \
             \"page_cache_misses\": {}, \"io_retries\": {}, \
             \"io_retry_exhausted\": {}}}",
            s.tweets,
            s.batches,
            s.delta_bytes_avg,
            s.delta_bytes_last,
            s.snapshot_bytes_last,
            s.wal_bytes_total,
            s.snapshots,
            s.sublinear,
            s.snapshot_q_bytes,
            s.snapshot_f32_bytes,
            s.spill_bytes,
            s.page_cache_hits,
            s.page_cache_misses,
            s.io_retries,
            s.io_retry_exhausted,
        ));
    }
    if let Some(p) = parallel {
        out.push_str(&format!(
            ",\n  \"parallel\": {{\"spawn_overhead\": {{\"batch\": {}, \"rounds\": {}, \
             \"pooled_s\": {:.6}, \"scoped_s\": {:.6}, \"speedup\": {:.3}}}, \
             \"giant_surface_tail\": {{\"points\": {}, \"seq_s\": {:.6}, \
             \"par4_s\": {:.6}, \"speedup\": {:.3}}}, \"parallelism\": {}}}",
            p.batch,
            p.rounds,
            p.pooled_spawn_s,
            p.scoped_spawn_s,
            p.spawn_speedup,
            p.giant_points,
            p.giant_1t_s,
            p.giant_4t_s,
            p.giant_speedup,
            p.parallelism,
        ));
    }
    if let Some(k) = kernels {
        out.push_str(&format!(
            ",\n  \"kernels\": {{\"rows\": {}, \"dim\": {}, \"reps\": {}, \
             \"naive_scan_s\": {:.6}, \"block_scan_s\": {:.6}, \
             \"kernel_speedup\": {:.3}, \"quantized_bytes\": {}, \
             \"f32_bytes\": {}, \"quantized_bytes_ratio\": {:.4}, \
             \"parallelism\": {}}}",
            k.rows,
            k.dim,
            k.reps,
            k.naive_scan_s,
            k.block_scan_s,
            k.kernel_speedup,
            k.quantized_bytes,
            k.f32_bytes,
            k.quantized_bytes_ratio,
            k.parallelism,
        ));
    }
    if let Some(s) = serve {
        out.push_str(&format!(
            ",\n  \"serve\": {{\"writers\": {}, \"requests\": {}, \"lines\": {}, \
             \"tweets\": {}, \"surfaces\": {}, \
             \"batched\": {{\"rps\": {:.1}, \"p50_ack_us\": {}, \"p99_ack_us\": {}, \
             \"batches\": {}, \"max_batch\": {}}}, \
             \"one_per_batch\": {{\"rps\": {:.1}, \"p50_ack_us\": {}, \"p99_ack_us\": {}}}, \
             \"batching_speedup\": {:.3}, \"parallelism\": {}}}",
            s.writers,
            s.requests,
            s.lines,
            s.tweets,
            s.surfaces,
            s.batched_rps,
            s.batched_p50_us,
            s.batched_p99_us,
            s.batched_batches,
            s.batched_max_batch,
            s.single_rps,
            s.single_p50_us,
            s.single_p99_us,
            s.batching_speedup,
            s.parallelism,
        ));
    }
    if let Some(s) = shard {
        out.push_str(&format!(
            ",\n  \"shard\": {{\"writers\": {}, \"requests\": {}, \"lines\": {}, \
             \"tweets\": {}, \"shards\": {}, \
             \"sharded\": {{\"rps\": {:.1}, \"p50_ack_us\": {}, \"p99_ack_us\": {}}}, \
             \"one_shard\": {{\"rps\": {:.1}, \"p50_ack_us\": {}, \"p99_ack_us\": {}}}, \
             \"shard_speedup\": {:.3}, \"parallelism\": {}}}",
            s.writers,
            s.requests,
            s.lines,
            s.tweets,
            s.shards,
            s.sharded_rps,
            s.sharded_p50_us,
            s.sharded_p99_us,
            s.single_rps,
            s.single_p50_us,
            s.single_p99_us,
            s.shard_speedup,
            s.parallelism,
        ));
    }
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("[reproduce] failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[reproduce] wrote per-stage timings to {path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Drain `--timings-json <path>` before the section filter below —
    // the path operand would otherwise be mistaken for a section name.
    let mut drain_value = |flag: &str, hint: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            if i + 1 >= args.len() {
                eprintln!("{flag} requires a value (e.g. {hint})");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        })
    };
    let timings_json = drain_value("--timings-json", "BENCH_pipeline.json");
    let store_dir = drain_value("--store-dir", "./ngl-store");
    let checkpoint_every = drain_value("--checkpoint-every", "8")
        .map(|v| {
            v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--checkpoint-every must be a number, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(8);
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2024);
    let mut sections: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .cloned()
        .collect();
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    const KNOWN: &[&str] = &[
        "all", "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "casestudy",
        "errors", "emd", "ablations", "store", "parallel", "kernels", "serve", "shard",
    ];
    if let Some(bad) = sections.iter().find(|s| !KNOWN.contains(&s.as_str())) {
        eprintln!("unknown section {bad:?}; known sections: {}", KNOWN.join(" "));
        std::process::exit(2);
    }
    let want = |s: &str| sections.iter().any(|x| x == s || x == "all");

    // `parallel` / `kernels` alone need no trained models — skip the
    // (expensive) experiment build and exit once the bench rows are
    // printed.
    let run_parallel = sections.iter().any(|s| s == "parallel") || timings_json.is_some();
    let run_kernels = sections.iter().any(|s| s == "kernels") || timings_json.is_some();
    let run_serve = sections.iter().any(|s| s == "serve") || timings_json.is_some();
    let run_shard = sections.iter().any(|s| s == "shard") || timings_json.is_some();
    let run_shard_section = || {
        eprintln!("[reproduce] running sharded-serving benchmark...");
        let t = Instant::now();
        let s = tables::shard_bench(4);
        eprintln!("[reproduce] shard bench done in {:.1}s", t.elapsed().as_secs_f64());
        println!("{}", tables::shard_table(&s));
        // Throughput comparisons need real cores: every shard replays
        // the full ingest stream, so on one core sharding can only tie.
        if s.parallelism > 1 && s.shard_speedup < 1.5 {
            eprintln!(
                "[reproduce] FAIL: {} shards deliver only {:.2}x the 1-shard \
                 throughput (< 1.5x) — ownership partitioning is not paying for itself",
                s.shards, s.shard_speedup
            );
            std::process::exit(1);
        }
        if s.parallelism <= 1 {
            eprintln!(
                "[reproduce] single-core host: shard speedup {:.2}x logged, assert skipped",
                s.shard_speedup
            );
        }
        s
    };
    let run_serve_section = || {
        eprintln!("[reproduce] running serving-layer SLO benchmark...");
        let t = Instant::now();
        let s = tables::serve_bench();
        eprintln!("[reproduce] serve bench done in {:.1}s", t.elapsed().as_secs_f64());
        println!("{}", tables::serve_table(&s));
        // Wall-clock SLOs need real cores (same convention as the
        // executor and kernel benchmarks).
        if s.parallelism > 1 && s.batching_speedup < 2.0 {
            eprintln!(
                "[reproduce] FAIL: batching ingest is only {:.2}x the one-tweet-per-batch \
                 throughput (< 2x) — server-side coalescing is not paying for itself",
                s.batching_speedup
            );
            std::process::exit(1);
        }
        s
    };
    let run_kernel_section = || {
        eprintln!("[reproduce] running fused-kernel benchmarks...");
        let t = Instant::now();
        let k = tables::kernel_bench();
        eprintln!("[reproduce] kernel bench done in {:.1}s", t.elapsed().as_secs_f64());
        println!("{}", tables::kernel_table(&k));
        if k.quantized_bytes_ratio > 0.30 {
            eprintln!(
                "[reproduce] FAIL: quantized payload is {:.4} of f32 (> 0.30) — \
                 the i8 codec is not delivering its shrink factor",
                k.quantized_bytes_ratio
            );
            std::process::exit(1);
        }
        // Wall-clock comparisons are only trustworthy with real cores;
        // single-core CI runners skip the speedup assert (same
        // convention as the executor tail benchmarks).
        if k.parallelism > 1 && k.kernel_speedup <= 1.0 {
            eprintln!(
                "[reproduce] FAIL: cosine block scan is {:.2}x vs the naive loop — \
                 the fused kernels are slower than what they replaced",
                k.kernel_speedup
            );
            std::process::exit(1);
        }
        k
    };
    if timings_json.is_none()
        && store_dir.is_none()
        && !sections.is_empty()
        && sections
            .iter()
            .all(|s| s == "parallel" || s == "kernels" || s == "serve" || s == "shard")
    {
        let t = Instant::now();
        if run_parallel {
            eprintln!("[reproduce] running persistent-executor tail benchmarks...");
            println!("{}", tables::parallel_table(&tables::parallel_bench()));
        }
        if run_kernels {
            run_kernel_section();
        }
        if run_serve {
            run_serve_section();
        }
        if run_shard {
            run_shard_section();
        }
        eprintln!("[reproduce] total {:.1}s", t.elapsed().as_secs_f64());
        return;
    }

    let scale = if quick { Scale::quick() } else { Scale::full() };
    eprintln!(
        "[reproduce] building experiment (seed {seed}, {} scale)...",
        if quick { "quick" } else { "full" }
    );
    let t0 = Instant::now();
    let exp = Experiment::build(seed, scale);
    eprintln!("[reproduce] setup done in {:.1}s", t0.elapsed().as_secs_f64());

    if want("table1") {
        println!("{}", tables::table1(&exp));
    }
    if want("table2") {
        eprintln!("[reproduce] training soft-NN variant for Table II...");
        println!("{}", tables::table2(&exp));
    }

    let needs_runs = timings_json.is_some()
        || ["table3", "table4", "table5", "fig4", "casestudy", "errors", "emd"]
            .iter()
            .any(|s| want(s));
    let runs = if needs_runs {
        eprintln!("[reproduce] running full pipeline over all eval datasets...");
        let t = Instant::now();
        let r = tables::run_all(&exp);
        eprintln!("[reproduce] pipeline runs done in {:.1}s", t.elapsed().as_secs_f64());
        Some(r)
    } else {
        None
    };

    if want("table3") {
        eprintln!("[reproduce] training local baselines (Aguilar, BERT-NER)...");
        let aguilar = exp.train_aguilar();
        let bert = exp.train_bert_ner();
        println!(
            "{}",
            tables::table3(&exp, runs.as_ref().expect("runs"), &aguilar, &bert)
        );
    }
    if want("table4") {
        println!("{}", tables::table4(&exp, runs.as_ref().expect("runs")));
    }
    if want("table5") {
        eprintln!("[reproduce] training global baselines (Akbik, HIRE, DocL)...");
        let akbik = exp.train_akbik();
        let hire = exp.train_hire();
        let docl = exp.make_docl();
        println!(
            "{}",
            tables::table5(&exp, runs.as_ref().expect("runs"), &akbik, &hire, &docl)
        );
    }
    if want("fig3") {
        eprintln!("[reproduce] running ablation variants for Figure 3...");
        println!("{}", tables::fig3(&exp));
    }
    if want("fig4") {
        println!("{}", tables::fig4(&exp, runs.as_ref().expect("runs")));
    }
    if want("casestudy") {
        println!("{}", tables::case_study(&exp, runs.as_ref().expect("runs")));
    }
    if want("errors") {
        println!("{}", tables::error_analysis(&exp, runs.as_ref().expect("runs")));
    }
    if want("emd") {
        println!("{}", tables::emd_gains(&exp, runs.as_ref().expect("runs")));
    }
    if want("ablations") {
        eprintln!("[reproduce] sweeping design-choice ablations...");
        println!("{}", tables::ablations(&exp));
    }
    // `store` is off by default (like ablations); `--store-dir` or
    // `--timings-json` also force it so the report always carries the
    // delta-vs-snapshot row.
    let run_store = sections.iter().any(|s| s == "store")
        || store_dir.is_some()
        || timings_json.is_some();
    let store = if run_store {
        eprintln!("[reproduce] streaming through the durable store...");
        let dir = store_dir.clone().map(std::path::PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ngl-store-bench-{}", std::process::id()))
        });
        let t = Instant::now();
        match tables::store_bench(&exp, &dir, checkpoint_every) {
            Ok(r) => {
                eprintln!("[reproduce] store run done in {:.1}s", t.elapsed().as_secs_f64());
                println!("{}", tables::store_table(&r));
                if r.tweets >= 1000 && !r.sublinear {
                    eprintln!(
                        "[reproduce] FAIL: delta bytes/batch ({}) not below full snapshot \
                         ({} B) after {} tweets — delta checkpointing is not sublinear",
                        r.delta_bytes_last, r.snapshot_bytes_last, r.tweets
                    );
                    std::process::exit(1);
                }
                if store_dir.is_none() {
                    let _ = std::fs::remove_dir_all(&dir);
                }
                Some(r)
            }
            Err(e) => {
                eprintln!("[reproduce] store bench failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let parallel = if run_parallel {
        eprintln!("[reproduce] running persistent-executor tail benchmarks...");
        let t = Instant::now();
        let p = tables::parallel_bench();
        eprintln!("[reproduce] parallel bench done in {:.1}s", t.elapsed().as_secs_f64());
        println!("{}", tables::parallel_table(&p));
        Some(p)
    } else {
        None
    };
    let kernels = if run_kernels { Some(run_kernel_section()) } else { None };
    let serve = if run_serve { Some(run_serve_section()) } else { None };
    let shard = if run_shard { Some(run_shard_section()) } else { None };
    if let Some(path) = &timings_json {
        write_timings_json(
            path,
            &exp,
            runs.as_ref().expect("runs"),
            store.as_ref(),
            parallel.as_ref(),
            kernels.as_ref(),
            serve.as_ref(),
            shard.as_ref(),
        );
    }
    eprintln!("[reproduce] total {:.1}s", t0.elapsed().as_secs_f64());
}
