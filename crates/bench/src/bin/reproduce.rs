//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [--quick] [--seed N] [--timings-json PATH] [section ...]
//! sections: table1 table2 table3 table4 table5 fig3 fig4
//!           casestudy errors emd ablations; "all" (default) runs the
//!           paper artifacts (ablations must be requested explicitly)
//! ```
//!
//! `--timings-json` additionally writes the per-stage pipeline
//! wall-clock (local, extract+embed, cluster, classify, global) of
//! every eval dataset to the given path (conventionally
//! `BENCH_pipeline.json`), forcing the pipeline runs even when no
//! requested section needs them.

use std::time::Instant;

use ngl_bench::{tables, Experiment, Scale};

/// Hand-rolled JSON emission (the workspace deliberately has no JSON
/// dependency); dataset names are alphanumeric, so no escaping needed.
fn write_timings_json(path: &str, exp: &Experiment, runs: &tables::EvalRuns) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"datasets\": [\n",
        ngl_runtime::Executor::from_env().threads()
    ));
    for (i, (d, run)) in exp.data.eval.iter().zip(&runs.full).enumerate() {
        let t = &run.timings;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"local_s\": {:.6}, \"extract_s\": {:.6}, \
             \"cluster_s\": {:.6}, \"classify_s\": {:.6}, \"global_s\": {:.6}}}{}\n",
            d.name,
            t.local.as_secs_f64(),
            t.extract.as_secs_f64(),
            t.cluster.as_secs_f64(),
            t.classify.as_secs_f64(),
            t.global.as_secs_f64(),
            if i + 1 == runs.full.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("[reproduce] failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[reproduce] wrote per-stage timings to {path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Drain `--timings-json <path>` before the section filter below —
    // the path operand would otherwise be mistaken for a section name.
    let timings_json = args.iter().position(|a| a == "--timings-json").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--timings-json requires a path (e.g. BENCH_pipeline.json)");
            std::process::exit(2);
        }
        let path = args.remove(i + 1);
        args.remove(i);
        path
    });
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2024);
    let mut sections: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .cloned()
        .collect();
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    const KNOWN: &[&str] = &[
        "all", "table1", "table2", "table3", "table4", "table5", "fig3", "fig4", "casestudy",
        "errors", "emd", "ablations",
    ];
    if let Some(bad) = sections.iter().find(|s| !KNOWN.contains(&s.as_str())) {
        eprintln!("unknown section {bad:?}; known sections: {}", KNOWN.join(" "));
        std::process::exit(2);
    }
    let want = |s: &str| sections.iter().any(|x| x == s || x == "all");

    let scale = if quick { Scale::quick() } else { Scale::full() };
    eprintln!(
        "[reproduce] building experiment (seed {seed}, {} scale)...",
        if quick { "quick" } else { "full" }
    );
    let t0 = Instant::now();
    let exp = Experiment::build(seed, scale);
    eprintln!("[reproduce] setup done in {:.1}s", t0.elapsed().as_secs_f64());

    if want("table1") {
        println!("{}", tables::table1(&exp));
    }
    if want("table2") {
        eprintln!("[reproduce] training soft-NN variant for Table II...");
        println!("{}", tables::table2(&exp));
    }

    let needs_runs = timings_json.is_some()
        || ["table3", "table4", "table5", "fig4", "casestudy", "errors", "emd"]
            .iter()
            .any(|s| want(s));
    let runs = if needs_runs {
        eprintln!("[reproduce] running full pipeline over all eval datasets...");
        let t = Instant::now();
        let r = tables::run_all(&exp);
        eprintln!("[reproduce] pipeline runs done in {:.1}s", t.elapsed().as_secs_f64());
        Some(r)
    } else {
        None
    };

    if want("table3") {
        eprintln!("[reproduce] training local baselines (Aguilar, BERT-NER)...");
        let aguilar = exp.train_aguilar();
        let bert = exp.train_bert_ner();
        println!(
            "{}",
            tables::table3(&exp, runs.as_ref().expect("runs"), &aguilar, &bert)
        );
    }
    if want("table4") {
        println!("{}", tables::table4(&exp, runs.as_ref().expect("runs")));
    }
    if want("table5") {
        eprintln!("[reproduce] training global baselines (Akbik, HIRE, DocL)...");
        let akbik = exp.train_akbik();
        let hire = exp.train_hire();
        let docl = exp.make_docl();
        println!(
            "{}",
            tables::table5(&exp, runs.as_ref().expect("runs"), &akbik, &hire, &docl)
        );
    }
    if want("fig3") {
        eprintln!("[reproduce] running ablation variants for Figure 3...");
        println!("{}", tables::fig3(&exp));
    }
    if want("fig4") {
        println!("{}", tables::fig4(&exp, runs.as_ref().expect("runs")));
    }
    if want("casestudy") {
        println!("{}", tables::case_study(&exp, runs.as_ref().expect("runs")));
    }
    if want("errors") {
        println!("{}", tables::error_analysis(&exp, runs.as_ref().expect("runs")));
    }
    if want("emd") {
        println!("{}", tables::emd_gains(&exp, runs.as_ref().expect("runs")));
    }
    if want("ablations") {
        eprintln!("[reproduce] sweeping design-choice ablations...");
        println!("{}", tables::ablations(&exp));
    }
    if let Some(path) = &timings_json {
        write_timings_json(path, &exp, runs.as_ref().expect("runs"));
    }
    eprintln!("[reproduce] total {:.1}s", t0.elapsed().as_secs_f64());
}
