//! # ngl-cluster
//!
//! Candidate-cluster generation (§V-C): agglomerative clustering of
//! mention embeddings under **cosine distance** with **average linkage**
//! and a **distance threshold** stopping rule — the number of clusters
//! per surface form is unknown a priori, so threshold-stopped
//! agglomerative clustering is used instead of k-means-style methods.
//!
//! A useful identity makes average linkage cheap here: with unit-
//! normalized embeddings, the mean pairwise cosine *similarity* between
//! clusters A and B is `(ΣÂ · ΣB̂)/(|A||B|)`, so a cluster is fully
//! described by the sum of its normalized members plus a count. Merges
//! and incremental insertions are then O(d).
//!
//! The paper tunes the threshold below 1 (cosine distance 1 =
//! orthogonality, the triplet-loss margin).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

use ngl_nn::cosine::l2_normalized;
use ngl_nn::kernels::{self, VecKernel};
use ngl_runtime::Executor;

/// Result of a batch clustering: a cluster id per input point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// `assignments[i]` is the cluster of input point `i`, in `0..n_clusters`.
    pub assignments: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Indices of the members of each cluster.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); self.n_clusters];
        for (i, &c) in self.assignments.iter().enumerate() {
            g[c].push(i);
        }
        g
    }
}

#[derive(Debug, Clone)]
struct ClusterAgg {
    sum: Vec<f32>,
    count: usize,
    members: Vec<usize>,
}

impl ClusterAgg {
    /// Mean pairwise cosine distance to another cluster, with a
    /// pre-resolved dot kernel — block scans resolve the `NGL_KERNEL`
    /// dispatch once instead of per pair.
    fn distance_with(&self, dotf: VecKernel, other: &ClusterAgg) -> f32 {
        let sim = dotf(&self.sum, &other.sum) / (self.count * other.count) as f32;
        1.0 - sim.clamp(-1.0, 1.0)
    }

    fn merge(&mut self, other: ClusterAgg) {
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        self.count += other.count;
        self.members.extend(other.members);
    }
}

/// Bottom-up agglomerative clustering stopped at `threshold`.
///
/// ```
/// use ngl_cluster::agglomerative;
///
/// // Two senses of one surface form: mentions near orthogonal axes.
/// let mentions = vec![
///     vec![1.0, 0.05],
///     vec![0.95, 0.0],
///     vec![0.0, 1.0],
/// ];
/// let clustering = agglomerative(&mentions, 0.5);
/// assert_eq!(clustering.n_clusters, 2);
/// assert_eq!(clustering.assignments[0], clustering.assignments[1]);
/// assert_ne!(clustering.assignments[0], clustering.assignments[2]);
/// ```
///
/// Starts from singletons, repeatedly merges the closest pair of
/// clusters (average linkage over cosine distance) while the minimum
/// inter-cluster distance is below `threshold`.
///
/// `points` is anything slice-like (`&[Vec<f32>]`, `&[&[f32]]`, …), so
/// batch callers can pass borrowed mention embeddings without copying
/// each vector. Every point is L2-normalized exactly once, up front,
/// before the quadratic merge loop.
///
/// Complexity is O(n² · merges); mention sets per surface form are small
/// (tens to low hundreds), so the quadratic scan is not a bottleneck —
/// confirmed by the `cluster` Criterion bench.
pub fn agglomerative<P: AsRef<[f32]>>(points: &[P], threshold: f32) -> Clustering {
    agglomerative_exec(points, threshold, &Executor::sequential())
}

/// Rows below this count run the closest-pair scan sequentially even on
/// a parallel executor — the chunked scan only pays off once the O(n²)
/// pair sweep dominates the per-call scheduling cost.
const PAR_SCAN_MIN_ROWS: usize = 96;

/// [`agglomerative`] with the closest-pair search parallelized over
/// chunked rows on `exec` — for the giant surface forms whose quadratic
/// scan would otherwise occupy one pipeline worker for the whole batch.
///
/// The merge *order* stays sequential and the output is **bitwise
/// identical** to the sequential scan at any thread count: each chunk
/// scans its row range in the same `(i, j)` order with the same strict
/// `d < best` test starting from `+∞`, and the chunk-order reduction
/// also uses strict `<`, so the winning pair is exactly the first pair
/// in global scan order attaining the minimum — the sequential scan's
/// answer. (NaN distances lose every strict comparison in both
/// versions, so degenerate inputs agree too.)
pub fn agglomerative_exec<P: AsRef<[f32]>>(
    points: &[P],
    threshold: f32,
    exec: &Executor,
) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering { assignments: Vec::new(), n_clusters: 0 };
    }
    let mut clusters: Vec<ClusterAgg> = points
        .iter()
        .enumerate()
        .map(|(i, p)| ClusterAgg { sum: l2_normalized(p.as_ref()), count: 1, members: vec![i] })
        .collect();

    loop {
        if clusters.len() < 2 {
            break;
        }
        let best = closest_pair(&clusters, exec);
        if best.2 >= threshold {
            break;
        }
        let taken = clusters.swap_remove(best.1);
        clusters[best.0].merge(taken);
    }

    let mut assignments = vec![0usize; n];
    for (c, cl) in clusters.iter().enumerate() {
        for &m in &cl.members {
            assignments[m] = c;
        }
    }
    Clustering { assignments, n_clusters: clusters.len() }
}

/// First pair (in `(i, j)` scan order) attaining the minimum pairwise
/// distance, found sequentially or over row chunks — see
/// [`agglomerative_exec`] for the equivalence argument.
fn closest_pair(clusters: &[ClusterAgg], exec: &Executor) -> (usize, usize, f32) {
    let n = clusters.len();
    let dotf = kernels::dot_fn();
    let scan_rows = move |rows: std::ops::Range<usize>| {
        let mut best = (0usize, 1usize, f32::INFINITY);
        for i in rows {
            for j in i + 1..n {
                let d = clusters[i].distance_with(dotf, &clusters[j]);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        best
    };
    if exec.threads() <= 1 || n < PAR_SCAN_MIN_ROWS {
        return scan_rows(0..n);
    }
    // Over-split relative to the thread count: early rows hold far more
    // pairs than late ones, and the executor's dynamic scheduling evens
    // that skew out across smaller chunks.
    let chunk = n.div_ceil(exec.threads() * 4).max(8);
    let ranges: Vec<std::ops::Range<usize>> =
        (0..n).step_by(chunk).map(|s| s..(s + chunk).min(n)).collect();
    let bests = exec.par_map(ranges, |_, r| scan_rows(r));
    let mut best = (0usize, 1usize, f32::INFINITY);
    for b in bests {
        if b.2 < best.2 {
            best = b;
        }
    }
    best
}

/// Incrementally maintained clustering for the streaming setting (§V-C:
/// "both the representation space … and the clusters drawn from its
/// mentions are updated as and when new mentions arrive").
///
/// A new point joins the nearest existing cluster when its mean cosine
/// distance to that cluster's members is below the threshold; otherwise
/// it opens a new cluster. This is the standard one-pass approximation
/// of threshold-stopped average-linkage clustering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineClusters {
    threshold: f32,
    sums: Vec<Vec<f32>>,
    counts: Vec<usize>,
}

impl OnlineClusters {
    /// Empty clustering with the given distance threshold.
    pub fn new(threshold: f32) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Self { threshold, sums: Vec::new(), counts: Vec::new() }
    }

    /// Number of clusters so far.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// Whether no points have been inserted.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Member count of cluster `c`.
    pub fn count(&self, c: usize) -> usize {
        self.counts[c]
    }

    /// Mean cosine distance from `point` to cluster `c`.
    pub fn distance_to(&self, c: usize, point: &[f32]) -> f32 {
        let p = l2_normalized(point);
        1.0 - (kernels::dot(&p, &self.sums[c]) / self.counts[c] as f32).clamp(-1.0, 1.0)
    }

    /// First-minimum scan of one centroid range with a pre-resolved dot
    /// kernel. Both the sequential and the chunked-parallel assignment
    /// paths are built from this, so per-row distances are computed
    /// identically in every configuration.
    fn scan_range(
        &self,
        p: &[f32],
        range: std::ops::Range<usize>,
        dotf: VecKernel,
    ) -> Option<(usize, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for c in range {
            let d = 1.0 - (dotf(p, &self.sums[c]) / self.counts[c] as f32).clamp(-1.0, 1.0);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((c, d));
            }
        }
        best
    }

    /// Nearest centroid to the already-normalized `p` (first minimum in
    /// cluster-id order). Parallelizes over centroid chunks on `exec`
    /// once the scan is large enough; the chunk-order strict-`<`
    /// reduction returns exactly the sequential scan's answer, so the
    /// result is **bitwise identical** at any thread count.
    fn best_cluster(&self, p: &[f32], exec: &Executor) -> Option<(usize, f32)> {
        let n = self.sums.len();
        let dotf = kernels::dot_fn();
        if exec.threads() <= 1 || n < PAR_SCAN_MIN_ROWS {
            return self.scan_range(p, 0..n, dotf);
        }
        let chunk = n.div_ceil(exec.threads() * 4).max(8);
        let ranges: Vec<std::ops::Range<usize>> =
            (0..n).step_by(chunk).map(|s| s..(s + chunk).min(n)).collect();
        let bests = exec.par_map(ranges, |_, r| self.scan_range(p, r, dotf));
        let mut best: Option<(usize, f32)> = None;
        for b in bests.into_iter().flatten() {
            if best.is_none_or(|(_, bd)| b.1 < bd) {
                best = Some(b);
            }
        }
        best
    }

    /// Joins cluster `best` if its distance clears the threshold, else
    /// opens a fresh cluster; returns the id.
    fn join_or_open(&mut self, p: Vec<f32>, best: Option<(usize, f32)>) -> usize {
        match best {
            Some((c, d)) if d < self.threshold => {
                for (a, b) in self.sums[c].iter_mut().zip(&p) {
                    *a += b;
                }
                self.counts[c] += 1;
                c
            }
            _ => {
                self.sums.push(p);
                self.counts.push(1);
                self.sums.len() - 1
            }
        }
    }

    /// Inserts a point, returning the cluster id it joined (possibly a
    /// fresh one).
    pub fn insert(&mut self, point: &[f32]) -> usize {
        self.insert_exec(point, &Executor::sequential())
    }

    /// [`Self::insert`] with the centroid scan parallelized over chunks
    /// on `exec` — for giant surface forms whose centroid count grows
    /// into the hundreds. Assignments (and the resulting centroid sums)
    /// are bitwise identical to sequential insertion at any thread
    /// count; see [`Self::best_cluster`].
    pub fn insert_exec(&mut self, point: &[f32], exec: &Executor) -> usize {
        let p = l2_normalized(point);
        let best = self.best_cluster(&p, exec);
        self.join_or_open(p, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f32], jitter: &[f32]) -> Vec<f32> {
        center.iter().zip(jitter).map(|(c, j)| c + j).collect()
    }

    #[test]
    fn two_orthogonal_blobs_separate() {
        let mut pts = Vec::new();
        for j in [-0.05f32, 0.0, 0.05] {
            pts.push(blob(&[1.0, 0.0], &[0.0, j]));
            pts.push(blob(&[0.0, 1.0], &[j, 0.0]));
        }
        let c = agglomerative(&pts, 0.5);
        assert_eq!(c.n_clusters, 2);
        // Even/odd points alternate blobs.
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[1], c.assignments[3]);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn one_tight_blob_stays_together() {
        let pts: Vec<Vec<f32>> = (0..8)
            .map(|i| blob(&[1.0, 0.2], &[0.0, 0.01 * i as f32]))
            .collect();
        let c = agglomerative(&pts, 0.5);
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn tiny_threshold_keeps_singletons() {
        let pts = vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]];
        let c = agglomerative(&pts, 1e-6);
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn threshold_is_monotone_in_cluster_count() {
        let pts: Vec<Vec<f32>> = (0..12)
            .map(|i| {
                let a = i as f32 * 0.3;
                vec![a.cos(), a.sin()]
            })
            .collect();
        let mut last = usize::MAX;
        for t in [0.05f32, 0.2, 0.5, 1.0, 1.9] {
            let c = agglomerative(&pts, t);
            assert!(c.n_clusters <= last, "threshold {t} increased clusters");
            last = c.n_clusters;
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(agglomerative::<Vec<f32>>(&[], 0.5).n_clusters, 0);
        let c = agglomerative(&[vec![0.3, 0.4]], 0.5);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(c.assignments, vec![0]);
    }

    #[test]
    fn groups_partition_the_points() {
        let pts = vec![vec![1.0, 0.0], vec![0.99, 0.01], vec![0.0, 1.0]];
        let c = agglomerative(&pts, 0.3);
        let groups = c.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert_eq!(groups.len(), c.n_clusters);
    }

    #[test]
    fn borrowed_slices_cluster_identically_to_owned_points() {
        let owned: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                let a = i as f32 * 0.5;
                vec![a.cos(), a.sin(), 0.1]
            })
            .collect();
        let borrowed: Vec<&[f32]> = owned.iter().map(|p| p.as_slice()).collect();
        assert_eq!(agglomerative(&owned, 0.4), agglomerative(&borrowed, 0.4));
    }

    #[test]
    fn scale_invariance_of_cosine_clustering() {
        let a = vec![vec![1.0, 0.0], vec![100.0, 1.0], vec![0.0, 2.0]];
        let b = vec![vec![0.01, 0.0], vec![1.0, 0.01], vec![0.0, 0.002]];
        assert_eq!(agglomerative(&a, 0.4), agglomerative(&b, 0.4));
    }

    #[test]
    fn parallel_closest_pair_scan_is_bitwise_identical() {
        // Enough rows to cross PAR_SCAN_MIN_ROWS so the chunked scan
        // actually runs, with deliberately near-tied distances (points
        // on a slowly wound spiral) to stress the first-minimum tie
        // rule across chunk boundaries.
        let pts: Vec<Vec<f32>> = (0..150)
            .map(|i| {
                let a = i as f32 * 0.041;
                vec![a.cos(), a.sin(), (i % 7) as f32 * 0.05]
            })
            .collect();
        let par = Executor::new(4);
        for t in [0.02f32, 0.1, 0.4, 0.9, 1.5] {
            let seq = agglomerative(&pts, t);
            assert_eq!(seq, agglomerative_exec(&pts, t, &par), "threshold {t}");
            assert_eq!(seq, agglomerative_exec(&pts, t, &Executor::sequential()));
        }
    }

    #[test]
    fn online_matches_batch_on_well_separated_data() {
        let mut pts = Vec::new();
        for j in 0..5 {
            pts.push(blob(&[1.0, 0.0, 0.0], &[0.0, 0.02 * j as f32, 0.0]));
            pts.push(blob(&[0.0, 0.0, 1.0], &[0.0, 0.02 * j as f32, 0.0]));
        }
        let batch = agglomerative(&pts, 0.5);
        let mut online = OnlineClusters::new(0.5);
        let ids: Vec<usize> = pts.iter().map(|p| online.insert(p)).collect();
        assert_eq!(batch.n_clusters, online.len());
        // Same partitioning up to relabeling.
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                assert_eq!(
                    batch.assignments[i] == batch.assignments[j],
                    ids[i] == ids[j],
                    "points {i},{j} disagree"
                );
            }
        }
    }

    #[test]
    fn parallel_online_insert_is_bitwise_identical() {
        // A tight threshold on spiral points opens enough clusters to
        // push the centroid scan past PAR_SCAN_MIN_ROWS, with near-tied
        // distances stressing the first-minimum rule across chunks.
        let pts: Vec<Vec<f32>> = (0..220)
            .map(|i| {
                let a = i as f32 * 0.037;
                vec![a.cos(), a.sin(), (i % 5) as f32 * 0.04]
            })
            .collect();
        let par = Executor::new(4);
        for t in [0.0005f32, 0.002, 0.02, 0.4] {
            let mut seq = OnlineClusters::new(t);
            let mut par_oc = OnlineClusters::new(t);
            let seq_ids: Vec<usize> = pts.iter().map(|p| seq.insert(p)).collect();
            let par_ids: Vec<usize> = pts.iter().map(|p| par_oc.insert_exec(p, &par)).collect();
            assert_eq!(seq_ids, par_ids, "threshold {t}");
            assert!(seq.len() >= PAR_SCAN_MIN_ROWS || t > 0.002, "threshold {t} too lax to test");
            assert_eq!(seq.counts, par_oc.counts, "threshold {t}");
            for (a, b) in seq.sums.iter().zip(&par_oc.sums) {
                let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                assert_eq!(ab, bb, "threshold {t} centroid bits");
            }
        }
    }

    #[test]
    fn online_counts_track_insertions() {
        let mut oc = OnlineClusters::new(0.4);
        let c0 = oc.insert(&[1.0, 0.0]);
        let c1 = oc.insert(&[0.98, 0.02]);
        assert_eq!(c0, c1);
        assert_eq!(oc.count(c0), 2);
        let c2 = oc.insert(&[0.0, 1.0]);
        assert_ne!(c0, c2);
        assert_eq!(oc.len(), 2);
    }

    #[test]
    fn distance_to_is_zero_for_identical_direction() {
        let mut oc = OnlineClusters::new(0.4);
        let c = oc.insert(&[0.5, 0.5]);
        assert!(oc.distance_to(c, &[2.0, 2.0]) < 1e-5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn point() -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec(-1.0f32..1.0, 3).prop_filter("non-zero", |v| {
            v.iter().map(|x| x * x).sum::<f32>() > 1e-4
        })
    }

    proptest! {
        #[test]
        fn assignments_are_a_valid_partition(
            pts in prop::collection::vec(point(), 0..25),
            threshold in 0.05f32..1.5,
        ) {
            let c = agglomerative(&pts, threshold);
            prop_assert_eq!(c.assignments.len(), pts.len());
            if !pts.is_empty() {
                prop_assert!(c.n_clusters >= 1 && c.n_clusters <= pts.len());
            }
            for &a in &c.assignments {
                prop_assert!(a < c.n_clusters);
            }
            // Every cluster id is used.
            let mut used = vec![false; c.n_clusters];
            for &a in &c.assignments {
                used[a] = true;
            }
            prop_assert!(used.into_iter().all(|u| u));
        }

        #[test]
        fn online_ids_are_dense(
            pts in prop::collection::vec(point(), 1..30),
            threshold in 0.05f32..1.5,
        ) {
            let mut oc = OnlineClusters::new(threshold);
            let mut max_id = 0usize;
            for p in &pts {
                let id = oc.insert(p);
                prop_assert!(id <= max_id + 1 || id <= oc.len());
                max_id = max_id.max(id);
            }
            prop_assert_eq!(max_id + 1, oc.len());
            let total: usize = (0..oc.len()).map(|c| oc.count(c)).sum();
            prop_assert_eq!(total, pts.len());
        }
    }
}
