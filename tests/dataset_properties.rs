//! Integration checks on the synthetic data substrate: the Table I
//! statistics, the streaming-vs-random contrast, and the train/eval
//! lexicon split that makes the task realistic.

use std::collections::HashSet;

use ner_globalizer::corpus::{all_eval_profiles, Dataset, StandardDatasets};
use ner_globalizer::text::tokenize;

#[test]
fn standard_universe_reproduces_table1_shape() {
    let data = StandardDatasets::generate(4242);
    let stats: Vec<_> = data.eval.iter().map(|d| d.stats()).collect();
    // Sizes of Table I.
    assert_eq!(stats[0].size, 1_000);
    assert_eq!(stats[1].size, 2_000);
    assert_eq!(stats[2].size, 3_000);
    assert_eq!(stats[3].size, 6_000);
    assert_eq!(stats[4].size, 1_287);
    assert_eq!(stats[5].size, 9_553);
    assert_eq!(data.d5.stats().size, 3_430);
    // Topic structure.
    assert_eq!(stats[0].n_topics, 1);
    assert_eq!(stats[1].n_topics, 1);
    assert_eq!(stats[2].n_topics, 3);
    assert_eq!(stats[3].n_topics, 5);
    // Hashtag counts: D3 carries 6, D4 carries 5.
    assert_eq!(stats[2].n_hashtags, 6);
    assert_eq!(stats[3].n_hashtags, 5);
    // Entity inventories in the hundreds, like the paper's 283–906.
    for s in &stats[..4] {
        assert!(
            (80..1500).contains(&s.unique_entities),
            "{}: {} unique entities",
            s.name,
            s.unique_entities
        );
    }
}

#[test]
fn streaming_datasets_repeat_entities_far_more_than_random_ones() {
    let data = StandardDatasets::generate(77);
    let rate = |d: &Dataset| {
        let s = d.stats();
        s.total_mentions as f64 / s.unique_entities.max(1) as f64
    };
    let streaming_mean: f64 =
        data.streaming_eval().iter().map(rate).sum::<f64>() / 4.0;
    let random_mean: f64 =
        data.non_streaming_eval().iter().map(rate).sum::<f64>() / 2.0;
    assert!(
        streaming_mean > 3.0 * random_mean,
        "stream recurrence {streaming_mean:.1} vs random {random_mean:.1}"
    );
}

#[test]
fn train_and_eval_entity_lexicons_are_disjoint() {
    let data = StandardDatasets::generate(123);
    let gold_tokens = |d: &Dataset| -> HashSet<String> {
        let mut out = HashSet::new();
        for t in &d.tweets {
            for g in &t.gold {
                for tok in &t.tokens[g.span.start..g.span.end] {
                    out.insert(tok.to_lowercase().trim_start_matches('#').to_string());
                }
            }
        }
        out
    };
    let train_tokens = gold_tokens(&data.local_train);
    let eval_tokens = gold_tokens(&data.eval[3]); // D4 spans all topics
    let shared: Vec<&String> = train_tokens.intersection(&eval_tokens).collect();
    // Only the universal pools (first names, "north"/"new"-style prefixes,
    // "of") may be shared; they are a small minority of eval tokens.
    let frac = shared.len() as f64 / eval_tokens.len().max(1) as f64;
    assert!(
        frac < 0.25,
        "too much lexical overlap between train and eval entities: {frac:.2}"
    );
}

#[test]
fn every_tweet_round_trips_through_the_tokenizer() {
    let data = StandardDatasets::generate(55);
    for d in data.eval.iter().take(2) {
        for t in d.tweets.iter().take(400) {
            let retok: Vec<String> = tokenize(&t.text()).into_iter().map(|t| t.text).collect();
            assert_eq!(retok, t.tokens, "tokenizer disagrees on {:?}", t.text());
        }
    }
}

#[test]
fn profiles_are_reproducible_across_generations() {
    let a = StandardDatasets::generate(9);
    let b = StandardDatasets::generate(9);
    for (da, db) in a.eval.iter().zip(&b.eval) {
        assert_eq!(da.tweets.len(), db.tweets.len());
        for (ta, tb) in da.tweets.iter().zip(&db.tweets) {
            assert_eq!(ta.tokens, tb.tokens);
            assert_eq!(ta.gold, tb.gold);
        }
    }
}

#[test]
fn eval_profiles_cover_all_six_datasets_in_paper_order() {
    let names: Vec<String> = all_eval_profiles(1).into_iter().map(|p| p.name).collect();
    assert_eq!(names, vec!["D1", "D2", "D3", "D4", "WNUT17", "BTC"]);
}

#[test]
fn gold_spans_always_lie_inside_their_tweets() {
    let data = StandardDatasets::generate(31);
    for d in &data.eval {
        for t in &d.tweets {
            for g in &t.gold {
                assert!(g.span.end <= t.tokens.len(), "span escapes tweet: {g:?}");
                assert!(g.span.start < g.span.end);
            }
        }
    }
}
