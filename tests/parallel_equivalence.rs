//! The executor contract: parallel execution is **bitwise identical**
//! to sequential execution in every ablation mode, and incremental
//! finalization is indistinguishable from an end-of-stream rebuild.
//!
//! Uses a deterministic fake tagger so the properties exercise the
//! pipeline machinery (scan, embed, cluster, classify, caches) rather
//! than model training.

use proptest::prelude::*;

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer,
    PhraseEmbedder, PhraseEmbedderConfig,
};
use ner_globalizer::encoder::{ContextualTagger, SentenceEncoding, SequenceTagger};
use ner_globalizer::nn::Matrix;
use ner_globalizer::runtime::Executor;
use ner_globalizer::text::{BioTag, EntityType};

const DIM: usize = 8;

/// Deterministic stand-in for Local NER: capitalized tokens tag as
/// B-PER, embeddings are a case-folded hash one-hot.
#[derive(Clone)]
struct FakeTagger;

impl SequenceTagger for FakeTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for FakeTagger {
    fn dim(&self) -> usize {
        DIM
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut emb = Matrix::zeros(tokens.len(), DIM);
        for (i, t) in tokens.iter().enumerate() {
            let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
            emb.row_mut(i)[h % DIM] = 1.0;
        }
        let tags = self.tag(tokens);
        SentenceEncoding {
            embeddings: emb,
            tags,
            probs: Matrix::zeros(tokens.len(), BioTag::COUNT),
        }
    }
}

fn pipeline(mode: AblationMode, exec: Executor) -> NerGlobalizer<FakeTagger> {
    NerGlobalizer::new(
        FakeTagger,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() }),
        GlobalizerConfig { ablation: mode, ..Default::default() },
    )
    .with_executor(exec)
}

/// Everything a finalize() leaves behind except the wall-clock timings,
/// with every float captured by bit pattern.
fn state_fingerprint(p: &NerGlobalizer<FakeTagger>) -> Vec<(String, Vec<u64>, Vec<u32>)> {
    let mut fp: Vec<(String, Vec<u64>, Vec<u32>)> = p
        .candidate_base()
        .iter()
        .map(|(surface, e)| {
            let mut nums: Vec<u64> = Vec::new();
            let mut bits: Vec<u32> = Vec::new();
            for m in &e.mentions {
                nums.extend([m.tweet as u64, m.start as u64, m.end as u64]);
                nums.push(m.local_type.map_or(u64::MAX, |t| t.index() as u64));
                bits.extend(m.local_emb.iter().map(|x| x.to_bits()));
            }
            for c in &e.clusters {
                nums.push(u64::MAX); // cluster delimiter
                nums.extend(c.members.iter().map(|&m| m as u64));
                nums.push(match c.label {
                    None => 0,
                    Some(None) => 1,
                    Some(Some(ty)) => 2 + ty.index() as u64,
                });
                bits.extend(c.global_emb.iter().map(|x| x.to_bits()));
            }
            (surface.to_string(), nums, bits)
        })
        .collect();
    fp.push((
        "<meta>".to_string(),
        vec![p.n_surfaces() as u64, p.cached_mentions() as u64, p.tweet_base().len() as u64],
        Vec::new(),
    ));
    fp
}

const ALL_MODES: [AblationMode; 4] = [
    AblationMode::LocalOnly,
    AblationMode::MentionExtraction,
    AblationMode::LocalClassifier,
    AblationMode::FullGlobal,
];

/// A small mixed-case vocabulary: capitalized forms seed surfaces, the
/// lowercase twins only surface through the CTrie scan, and the filler
/// words keep tweets realistic (and exercise the stopword filter).
const VOCAB: [&str; 14] = [
    "Beshear", "beshear", "Italy", "italy", "Covid", "covid", "Louisville", "louisville",
    "the", "a", "today", "spoke", "won", "masks",
];

/// 1–4 batches of 0–5 tweets of 1–7 vocab tokens each.
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<Vec<String>>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(0..VOCAB.len(), 1..8)
                .prop_map(|ids| ids.into_iter().map(|i| VOCAB[i].to_string()).collect()),
            0..6,
        ),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every ablation mode, a 4-worker run and the exact sequential
    /// run produce identical outputs after every incremental finalize,
    /// and identical candidate-store state (floats compared by bits).
    #[test]
    fn parallel_runs_are_bitwise_identical_to_sequential(batches in batches_strategy()) {
        for mode in ALL_MODES {
            let mut seq = pipeline(mode, Executor::sequential());
            let mut par = pipeline(mode, Executor::new(4));
            for batch in &batches {
                let a = seq.process_batch(batch);
                let b = par.process_batch(batch);
                prop_assert_eq!(a.local_spans, b.local_spans, "local spans diverge in {:?}", mode);
                // Incremental finalize after every batch — the
                // continuous-execution setup of §III.
                prop_assert_eq!(seq.finalize(), par.finalize(), "outputs diverge in {:?}", mode);
            }
            prop_assert_eq!(
                state_fingerprint(&seq),
                state_fingerprint(&par),
                "state diverges in {:?}",
                mode
            );
        }
    }

    /// Finalizing after every batch leaves exactly the output and state
    /// of one end-of-stream finalize, sequentially and in parallel.
    #[test]
    fn incremental_finalize_matches_full_rebuild(batches in batches_strategy()) {
        for mode in ALL_MODES {
            for threads in [1usize, 4] {
                let mut inc = pipeline(mode, Executor::new(threads));
                let mut full = pipeline(mode, Executor::new(threads));
                let mut inc_out = Vec::new();
                for batch in &batches {
                    inc.process_batch(batch);
                    inc_out = inc.finalize();
                    full.process_batch(batch);
                }
                let full_out = full.finalize();
                prop_assert_eq!(&inc_out, &full_out, "outputs diverge in {:?}", mode);
                prop_assert_eq!(
                    state_fingerprint(&inc),
                    state_fingerprint(&full),
                    "state diverges in {:?}",
                    mode
                );
            }
        }
    }
}

/// The pooled-executor contract under sharing and skew: one executor
/// clone (clones share the persistent worker pool) drives pipelines
/// across all ablation modes while a skewed stream pushes two surfaces
/// past the giant-surface threshold — so the intra-surface parallel
/// clustering and classification paths run — and everything stays
/// bitwise identical to the exact sequential execution.
#[test]
fn shared_pool_with_giant_surfaces_is_bitwise_identical_to_sequential() {
    // 10 batches × 16 tweets, every tweet mentioning "Beshear" and
    // "Louisville": both surfaces end far beyond the 128-mention
    // giant threshold while staying under the online-clustering cap.
    let batches: Vec<Vec<Vec<String>>> = (0..10)
        .map(|b| {
            (0..16)
                .map(|i| {
                    vec![
                        "Beshear".to_string(),
                        VOCAB[(b * 16 + i) % VOCAB.len()].to_string(),
                        "Louisville".to_string(),
                        format!("w{}", (b * 16 + i) % 7),
                    ]
                })
                .collect()
        })
        .collect();

    let shared = Executor::new(4);
    for mode in ALL_MODES {
        let mut seq = pipeline(mode, Executor::sequential());
        let mut par = pipeline(mode, shared.clone());
        for batch in &batches {
            let a = seq.process_batch(batch);
            let b = par.process_batch(batch);
            assert_eq!(a.local_spans, b.local_spans, "local spans diverge in {mode:?}");
            assert_eq!(seq.finalize(), par.finalize(), "outputs diverge in {mode:?}");
        }
        assert_eq!(
            state_fingerprint(&seq),
            state_fingerprint(&par),
            "state diverges in {mode:?}"
        );
    }
    // The skew actually crossed the giant threshold (both pipelines
    // agree, so checking one suffices).
    let mut probe = pipeline(AblationMode::FullGlobal, shared);
    for batch in &batches {
        probe.process_batch(batch);
    }
    probe.finalize();
    let giant_mentions = probe
        .candidate_base()
        .iter()
        .map(|(_, e)| e.mentions.len())
        .max()
        .unwrap_or(0);
    assert!(
        giant_mentions >= 128,
        "stream must produce a giant surface (max mentions: {giant_mentions})"
    );
}

/// Deterministic (non-property) regression: a stream where later
/// batches seed surfaces that occur in earlier tweets, so incremental
/// finalize has to survive CTrie version bumps mid-stream.
#[test]
fn repeated_incremental_finalize_equals_single_finalize() {
    let toks = |s: &str| s.split(' ').map(str::to_string).collect::<Vec<_>>();
    let batches = [
        vec![toks("saw beshear and italy today"), toks("masks won today")],
        vec![toks("Beshear spoke today")],
        vec![toks("Italy won masks"), toks("thanks beshear for italy")],
        vec![toks("covid spoke the a")],
        vec![toks("Covid in Louisville today"), toks("louisville masks covid")],
    ];
    for mode in ALL_MODES {
        let mut inc = pipeline(mode, Executor::from_env());
        let mut full = pipeline(mode, Executor::from_env());
        let mut inc_out = Vec::new();
        for b in &batches {
            inc.process_batch(b);
            inc_out = inc.finalize();
            full.process_batch(b);
        }
        let full_out = full.finalize();
        assert_eq!(inc_out, full_out, "outputs diverge in {mode:?}");
        assert_eq!(
            state_fingerprint(&inc),
            state_fingerprint(&full),
            "state diverges in {mode:?}"
        );
    }
}
