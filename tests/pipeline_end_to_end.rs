//! End-to-end integration: train the full stack at miniature scale and
//! verify the paper's headline claims hold directionally.

use ner_globalizer::core::{
    train_globalizer, AblationMode, GlobalizerConfig, GlobalizerTrainingConfig, NerGlobalizer,
};
use ner_globalizer::corpus::namegen::Universe;
use ner_globalizer::corpus::{Dataset, DatasetSpec, KnowledgeBase, Topic};
use ner_globalizer::encoder::{train_encoder, EncoderConfig, TokenEncoder, TrainConfig};
use ner_globalizer::eval::{evaluate, evaluate_emd};
use ner_globalizer::text::Span;

struct Stack {
    local: TokenEncoder,
    trained: ner_globalizer::core::train::TrainedGlobalNer,
    stream: Dataset,
}

fn build_stack(seed: u64) -> Stack {
    let train_kb = KnowledgeBase::build_in(seed ^ 1, 150, Universe::Train);
    let d5_kb = KnowledgeBase::build(seed ^ 2, 100);
    let eval_kb = KnowledgeBase::build(seed ^ 3, 100);
    let train_set = Dataset::generate(
        &DatasetSpec::non_streaming("train", 1_200, seed ^ 0xA),
        &train_kb,
    );
    let d5 = Dataset::generate(
        &DatasetSpec::streaming("d5", 900, Topic::ALL.to_vec(), seed ^ 0xB),
        &d5_kb,
    );
    let stream = Dataset::generate(
        &DatasetSpec::streaming("stream", 500, vec![Topic::Health], seed ^ 0xC),
        &eval_kb,
    );
    let mut local = TokenEncoder::new(EncoderConfig {
        embed_dim: 16,
        hidden_dim: 24,
        out_dim: 16,
        seed,
        ..Default::default()
    });
    train_encoder(&mut local, &train_set, &TrainConfig { epochs: 5, ..Default::default() });
    let mut cfg = GlobalizerTrainingConfig::for_dim(16);
    cfg.max_triplets = 8_000;
    cfg.phrase.max_epochs = 20;
    cfg.classifier.max_epochs = 50;
    let trained = train_globalizer(&local, &d5, &cfg);
    Stack { local, trained, stream }
}

fn run(stack: &Stack, mode: AblationMode) -> (Vec<Vec<Span>>, Vec<Vec<Span>>) {
    let mut p = NerGlobalizer::new(
        stack.local.clone(),
        stack.trained.phrase.clone(),
        stack.trained.classifier.clone(),
        GlobalizerConfig { ablation: mode, ..Default::default() },
    );
    for batch in stack.stream.batches(150) {
        let toks: Vec<Vec<String>> = batch.iter().map(|t| t.tokens.clone()).collect();
        p.process_batch(&toks);
    }
    let out = p.finalize();
    (p.local_outputs(), out)
}

#[test]
fn global_ner_beats_local_ner_on_a_stream() {
    let stack = build_stack(97);
    let gold: Vec<Vec<Span>> = stack.stream.tweets.iter().map(|t| t.gold_spans()).collect();
    let (local, global) = run(&stack, AblationMode::FullGlobal);
    let lf = evaluate(&gold, &local).macro_f1();
    let gf = evaluate(&gold, &global).macro_f1();
    assert!(
        gf > lf,
        "Global NER ({gf:.3}) must beat Local NER ({lf:.3}) on a stream"
    );
    // EMD (boundary-only) should improve too (§VI-D).
    let le = evaluate_emd(&gold, &local).f1();
    let ge = evaluate_emd(&gold, &global).f1();
    assert!(
        ge > le - 0.02,
        "EMD quality regressed badly: local {le:.3} vs global {ge:.3}"
    );
}

#[test]
fn mention_extraction_increases_detected_mentions() {
    let stack = build_stack(98);
    let (local, extraction) = run(&stack, AblationMode::MentionExtraction);
    let local_mentions: usize = local.iter().map(Vec::len).sum();
    let extracted: usize = extraction.iter().map(Vec::len).sum();
    assert!(
        extracted > local_mentions,
        "extraction ({extracted}) should add mentions over local ({local_mentions})"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let stack = build_stack(99);
    let (_, a) = run(&stack, AblationMode::FullGlobal);
    let (_, b) = run(&stack, AblationMode::FullGlobal);
    assert_eq!(a, b, "same trained stack + same stream must give same output");
}

#[test]
fn local_only_mode_matches_local_outputs() {
    let stack = build_stack(100);
    let (local, out) = run(&stack, AblationMode::LocalOnly);
    assert_eq!(local, out);
}

#[test]
fn batched_and_single_shot_processing_agree() {
    let stack = build_stack(101);
    let toks: Vec<Vec<String>> =
        stack.stream.tweets.iter().map(|t| t.tokens.clone()).collect();
    let mut p1 = NerGlobalizer::new(
        stack.local.clone(),
        stack.trained.phrase.clone(),
        stack.trained.classifier.clone(),
        GlobalizerConfig::default(),
    );
    p1.process_batch(&toks);
    let single = p1.finalize();

    let mut p2 = NerGlobalizer::new(
        stack.local.clone(),
        stack.trained.phrase.clone(),
        stack.trained.classifier.clone(),
        GlobalizerConfig::default(),
    );
    for chunk in toks.chunks(57) {
        p2.process_batch(chunk);
    }
    let batched = p2.finalize();
    // finalize() re-scans everything with the final CTrie, so batch size
    // must not affect the final output.
    assert_eq!(single, batched);
}
