//! Crash-consistency contract of `GlobalizerBundle` v2: a pipeline
//! checkpointed mid-stream, serialized, reloaded and resumed must be
//! bitwise indistinguishable — in final outputs and in candidate
//! state — from a never-interrupted run, and the v2 byte encoding
//! itself must be canonical (serialize → parse → serialize is the
//! identity). Legacy v1 bundles (models only) must keep loading.

use std::collections::BTreeSet;

use ner_globalizer::core::{
    ClassifierConfig, EntityClassifier, GlobalizerBundle, GlobalizerConfig, NerGlobalizer,
    PhraseEmbedder, PhraseEmbedderConfig, RetentionPolicy,
};
use ner_globalizer::encoder::{
    ContextualTagger, EncoderConfig, SentenceEncoding, SequenceTagger, TokenEncoder,
};
use ner_globalizer::runtime::faults::SplitMix64;
use ner_globalizer::text::{BioTag, EntityType, Span};

const DIM: usize = 8;
const BATCH: usize = 4;

/// The real (serializable) encoder with a deterministic tagging rule
/// on top: capitalized tokens tag as B-PER. The untrained head's own
/// tags are arbitrary; forcing the rule guarantees the stream grows
/// non-trivial candidate state while the *embeddings* under test stay
/// the encoder's real output.
#[derive(Clone)]
struct CapTagger(TokenEncoder);

impl SequenceTagger for CapTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for CapTagger {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut enc = self.0.encode(tokens);
        enc.tags = self.tag(tokens);
        enc
    }
}

fn models() -> (TokenEncoder, PhraseEmbedder, EntityClassifier) {
    let encoder = TokenEncoder::new(EncoderConfig {
        embed_dim: 8,
        hidden_dim: 12,
        out_dim: DIM,
        window: 1,
        seed: 3,
        ..Default::default()
    });
    let phrase = PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() });
    let classifier = EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() });
    (encoder, phrase, classifier)
}

fn pipeline(cfg: GlobalizerConfig) -> NerGlobalizer<CapTagger> {
    let (encoder, phrase, classifier) = models();
    NerGlobalizer::new(CapTagger(encoder), phrase, classifier, cfg)
}

fn gen_stream(seed: u64, n: usize) -> Vec<(u64, Vec<String>)> {
    const VOCAB: [&str; 10] = [
        "Beshear", "Italy", "Madrid", "Wolves", "spoke", "won", "today", "about", "covid", "rally",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let len = 3 + rng.next_below(5) as usize;
            let tokens = (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect();
            (500 + i as u64, tokens)
        })
        .collect()
}

/// Feeds `stream` batch-by-batch with a finalize after each batch,
/// returning the last finalize output.
fn drive(p: &mut NerGlobalizer<CapTagger>, stream: &[(u64, Vec<String>)]) -> Vec<Vec<Span>> {
    let mut out = Vec::new();
    for chunk in stream.chunks(BATCH) {
        let (_, report) = p.try_process_batch_with_ids(chunk.to_vec());
        assert!(report.all_ok());
        out = p.finalize();
    }
    out
}

fn fingerprint(p: &NerGlobalizer<CapTagger>) -> Vec<(String, Vec<u64>, Vec<u32>)> {
    p.candidate_base()
        .iter()
        .map(|(surface, e)| {
            let mut nums: Vec<u64> = Vec::new();
            let mut bits: Vec<u32> = Vec::new();
            for m in &e.mentions {
                nums.extend([m.tweet as u64, m.start as u64, m.end as u64]);
                bits.extend(m.local_emb.iter().map(|x| x.to_bits()));
            }
            for c in &e.clusters {
                nums.push(u64::MAX);
                nums.extend(c.members.iter().map(|&m| m as u64));
                bits.extend(c.global_emb.iter().map(|x| x.to_bits()));
            }
            (surface.to_string(), nums, bits)
        })
        .collect()
}

/// Snapshot `donor` into a v2 bundle, serialize, parse back, and build
/// a resumed pipeline from the parsed models + checkpoint. Also checks
/// the encoding is canonical.
fn snapshot_and_restore(donor: &NerGlobalizer<CapTagger>) -> NerGlobalizer<CapTagger> {
    let (encoder, phrase, classifier) = models();
    let mut bundle = GlobalizerBundle::from_models(encoder, phrase, classifier);
    bundle.checkpoint = Some(donor.export_state());
    let bytes = bundle.to_bytes();
    let restored = GlobalizerBundle::from_bytes(bytes.clone()).expect("v2 bundle parses");
    assert_eq!(restored.to_bytes(), bytes, "v2 encoding is canonical");
    let ck = restored.checkpoint.expect("checkpoint travels with the bundle");
    let mut resumed = NerGlobalizer::new(
        CapTagger(restored.encoder),
        restored.phrase,
        restored.classifier,
        GlobalizerConfig::default(),
    );
    resumed.import_state(ck).expect("checkpoint is self-consistent");
    resumed
}

#[test]
fn v2_checkpoint_resume_is_bitwise_identical() {
    const N: usize = 12;
    for seed in [1u64, 23, 456] {
        let stream = gen_stream(seed, N);
        for split in [BATCH, 2 * BATCH] {
            // Uninterrupted reference.
            let mut reference = pipeline(GlobalizerConfig::default());
            let ref_out = drive(&mut reference, &stream);

            // Interrupted at `split`, checkpointed through the bundle,
            // resumed on freshly parsed models.
            let mut first = pipeline(GlobalizerConfig::default());
            drive(&mut first, &stream[..split]);
            let mut resumed = snapshot_and_restore(&first);
            drop(first);
            let out = drive(&mut resumed, &stream[split..]);

            assert_eq!(out, ref_out, "seed {seed}, split {split}");
            assert_eq!(fingerprint(&resumed), fingerprint(&reference));
            assert_eq!(resumed.scan_watermark(), reference.scan_watermark());
            assert_eq!(resumed.cached_mentions(), reference.cached_mentions());
            assert!(resumed.cached_mentions() > 0, "state under test is non-trivial");

            // `seen_ids` survived: replaying a pre-split id is rejected.
            let replay = vec![(stream[0].0, stream[0].1.clone())];
            let (_, report) = resumed.try_process_batch_with_ids(replay);
            assert_eq!(report.rejected, vec![0]);
            assert!(report.errors[0].message.contains("duplicate tweet id"));
        }
    }
}

#[test]
fn checkpoint_preserves_eviction_state() {
    let stream = gen_stream(77, 16);
    let cfg = GlobalizerConfig {
        retention: RetentionPolicy::MaxTweets(3),
        ..Default::default()
    };
    let mut reference = pipeline(cfg);
    let ref_out = drive(&mut reference, &stream);

    let mut first = pipeline(cfg);
    drive(&mut first, &stream[..2 * BATCH]);
    assert!(first.tweet_base().first_retained() > 0, "eviction happened before the snapshot");
    let mut resumed = snapshot_and_restore(&first);
    drop(first);
    let out = drive(&mut resumed, &stream[2 * BATCH..]);

    assert_eq!(out, ref_out);
    assert_eq!(fingerprint(&resumed), fingerprint(&reference));
    assert_eq!(resumed.tweet_base().first_retained(), reference.tweet_base().first_retained());
    assert_eq!(resumed.tweet_base().retained(), reference.tweet_base().retained());
}

#[test]
fn legacy_v1_bundle_loads_and_reruns_the_stream() {
    let stream = gen_stream(42, 8);
    let mut reference = pipeline(GlobalizerConfig::default());
    let ref_out = drive(&mut reference, &stream);

    let (encoder, phrase, classifier) = models();
    let bundle = GlobalizerBundle::from_models(encoder, phrase, classifier);
    let v1 = bundle.to_bytes_v1();
    let restored = GlobalizerBundle::from_bytes(v1).expect("v1 bundle parses");
    assert!(restored.checkpoint.is_none(), "v1 carries no stream state");

    // No checkpoint to resume from: re-feed the whole stream.
    let mut rerun = NerGlobalizer::new(
        CapTagger(restored.encoder),
        restored.phrase,
        restored.classifier,
        GlobalizerConfig::default(),
    );
    let out = drive(&mut rerun, &stream);
    assert_eq!(out, ref_out);
    assert_eq!(fingerprint(&rerun), fingerprint(&reference));
}

#[test]
fn bundle_file_save_is_atomic_and_loads_back() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ngl_ckpt_{}.bundle", std::process::id()));
    let mut donor = pipeline(GlobalizerConfig::default());
    drive(&mut donor, &gen_stream(8, 8));

    let (encoder, phrase, classifier) = models();
    let mut bundle = GlobalizerBundle::from_models(encoder, phrase, classifier);
    bundle.checkpoint = Some(donor.export_state());
    bundle.save(&path).expect("save");
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    assert!(!std::path::Path::new(&tmp).exists(), "temp file renamed away");

    let loaded = GlobalizerBundle::load(&path).expect("load");
    assert_eq!(loaded.to_bytes(), bundle.to_bytes(), "file round-trip is bitwise exact");
    let ck = loaded.checkpoint.expect("checkpoint loaded");
    assert_eq!(ck.seen_ids, (0..8).map(|i| 500 + i as u64).collect::<BTreeSet<u64>>());
    std::fs::remove_file(&path).ok();
}
