//! End-to-end contracts of the sharded globalizer (`ngl_core::shard`):
//!
//! * **sharding is invisible** — the merged finalize output, combined
//!   `state_digest`, and exported checkpoint bytes of a 2- and 4-shard
//!   store are bitwise identical to the 1-shard store at 1 and 4
//!   worker threads (the CI matrix adds `NGL_KERNEL=scalar|simd`);
//! * **a lagging shard heals on reopen** — kill a store whose faulty
//!   shard wedged on its first commit while the others kept going,
//!   reopen it clean, and catch-up replication replays the donor WAL
//!   until the merged digest matches a clean replay of the same
//!   stream;
//! * **faults stay contained** — ENOSPC on one shard degrades only
//!   that shard: the others keep admitting batches and the admission
//!   gate stays healthy while the worst-of aggregate reports the
//!   casualty.

use std::path::PathBuf;

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, DegradationMode, EntityClassifier, GlobalizerConfig,
    NerGlobalizer, PhraseEmbedder, PhraseEmbedderConfig, RetentionPolicy, ShardedGlobalizer,
};
use ner_globalizer::encoder::{ContextualTagger, SentenceEncoding, SequenceTagger};
use ner_globalizer::nn::Matrix;
use ner_globalizer::runtime::faults::{IoFault, IoFaultKind, IoFaultPlan, IoOp, IoPathClass, SplitMix64};
use ner_globalizer::runtime::Executor;
use ner_globalizer::store::{IoHandle, RetryPolicy};
use ner_globalizer::text::{BioTag, EntityType, Span};

const DIM: usize = 8;
const BATCH: usize = 20;

/// Deterministic stand-in for Local NER: capitalized tokens tag as
/// B-PER, embeddings are a case-folded hash one-hot.
#[derive(Clone)]
struct HashTagger;

impl SequenceTagger for HashTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for HashTagger {
    fn dim(&self) -> usize {
        DIM
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut emb = Matrix::zeros(tokens.len(), DIM);
        for (i, t) in tokens.iter().enumerate() {
            let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
            emb.row_mut(i)[h % DIM] = 1.0;
        }
        let tags = self.tag(tokens);
        SentenceEncoding { embeddings: emb, tags, probs: Matrix::zeros(tokens.len(), BioTag::COUNT) }
    }
}

fn pipeline(threads: usize, cfg: GlobalizerConfig) -> NerGlobalizer<HashTagger> {
    NerGlobalizer::new(
        HashTagger,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() }),
        cfg,
    )
    .with_executor(Executor::new(threads))
}

fn cfg(ablation: AblationMode) -> GlobalizerConfig {
    GlobalizerConfig { ablation, retention: RetentionPolicy::Unbounded, ..Default::default() }
}

fn full_cfg() -> GlobalizerConfig {
    cfg(AblationMode::FullGlobal)
}

/// A reproducible token stream over a vocabulary wide enough that the
/// FNV ownership rule scatters surfaces across every shard.
fn gen_stream(seed: u64, n: usize) -> Vec<Vec<String>> {
    const VOCAB: [&str; 20] = [
        "Beshear", "Italy", "Madrid", "Wolves", "Andy", "Breonna", "Louisville", "Taylor",
        "spoke", "won", "today", "about", "stream", "covid", "rally", "again", "masks", "court",
        "protest", "governor",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let len = 3 + rng.next_below(6) as usize;
            (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect()
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngl-shard-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Streams `stream` through a fresh sharded store and returns the last
/// finalize's spans, the combined digest, and the exported checkpoint
/// bytes of the merged view.
fn run_sharded(
    dir: &PathBuf,
    threads: usize,
    shards: u32,
    ablation: AblationMode,
    stream: &[Vec<String>],
) -> (Vec<Vec<Span>>, u64, Vec<u8>) {
    let (mut sharded, _) =
        ShardedGlobalizer::open(pipeline(threads, cfg(ablation)), dir, 10, shards).expect("open");
    let mut spans = Vec::new();
    for chunk in stream.chunks(BATCH) {
        sharded.process_batch(chunk.to_vec()).expect("batch");
        spans = sharded.finalize().expect("finalize");
    }
    let digest = sharded.combined_digest();
    let export = sharded.merged().export_state_bytes().to_vec();
    (spans, digest, export)
}

#[test]
fn sharded_output_is_bitwise_identical_to_one_shard() {
    let stream = gen_stream(0x54A8D, 8 * BATCH);
    // MentionExtraction emits every extracted mention (the untrained
    // classifier of FullGlobal validates none), so the span comparison
    // is over non-empty output; FullGlobal additionally runs the
    // clustering and classification stages whose caches the digest and
    // export bytes cover.
    for ablation in [AblationMode::MentionExtraction, AblationMode::FullGlobal] {
        let mut reference: Option<(Vec<Vec<Span>>, u64, Vec<u8>)> = None;
        for threads in [1usize, 4] {
            for shards in [1u32, 2, 4] {
                let dir = scratch(&format!("eq-{ablation:?}-{threads}t-{shards}s"));
                let got = run_sharded(&dir, threads, shards, ablation, &stream);
                if ablation == AblationMode::MentionExtraction {
                    assert!(
                        got.0.iter().any(|spans| !spans.is_empty()),
                        "mention extraction must produce spans for the comparison to bite"
                    );
                }
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        assert_eq!(
                            want.0, got.0,
                            "{shards}-shard spans diverge at {threads} threads ({ablation:?})"
                        );
                        assert_eq!(
                            want.1, got.1,
                            "{shards}-shard combined digest diverges at {threads} threads \
                             ({ablation:?})"
                        );
                        assert_eq!(
                            want.2, got.2,
                            "{shards}-shard export bytes diverge at {threads} threads \
                             ({ablation:?})"
                        );
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn lagging_shard_catches_up_on_reopen_and_matches_clean_replay() {
    const SHARDS: u32 = 3;
    const FAULTY: usize = 1;
    let stream = gen_stream(0x1A66, 6 * BATCH);

    // Chaos run: shard 1's disk fills on its very first batch commit
    // (WAL write #0 creates segment zero at open, #1 is the commit), so
    // it wedges while the other shards absorb the whole stream.
    let chaos_dir = scratch("lag-chaos");
    {
        let ios: Vec<IoHandle> = (0..SHARDS as usize)
            .map(|i| {
                if i == FAULTY {
                    let plan = IoFaultPlan::new().with_fault(IoFault {
                        op: IoOp::Write,
                        class: IoPathClass::Wal,
                        index: 1,
                        kind: IoFaultKind::NoSpace { span: 1000 },
                    });
                    IoHandle::chaos(plan, RetryPolicy::default().no_sleep())
                } else {
                    IoHandle::real()
                }
            })
            .collect();
        let (mut sharded, _) = ShardedGlobalizer::open_with_ios(
            pipeline(1, full_cfg()),
            &chaos_dir,
            1_000_000, // no compaction: the donor WAL must keep every record
            SHARDS,
            None,
            ios,
        )
        .expect("open chaos");
        for chunk in stream.chunks(BATCH) {
            sharded.process_batch(chunk.to_vec()).expect("healthy shards keep committing");
            sharded.finalize().expect("finalize");
        }
        assert!(sharded.is_wedged(FAULTY), "the full disk must wedge shard 1");
        // SIGKILL: drop without any orderly shutdown.
    }

    // Clean replay oracle: same stream, same call sequence, no faults.
    let clean_dir = scratch("lag-clean");
    {
        let (mut sharded, _) =
            ShardedGlobalizer::open(pipeline(1, full_cfg()), &clean_dir, 1_000_000, SHARDS)
                .expect("open clean");
        for chunk in stream.chunks(BATCH) {
            sharded.process_batch(chunk.to_vec()).expect("batch");
            sharded.finalize().expect("finalize");
        }
    }

    // Reopen both; catch-up replication must replay the donor WAL into
    // the lagging shard until the merged digests agree.
    let (chaos, chaos_report) =
        ShardedGlobalizer::open(pipeline(1, full_cfg()), &chaos_dir, 1_000_000, SHARDS)
            .expect("reopen chaos");
    let (clean, _) =
        ShardedGlobalizer::open(pipeline(1, full_cfg()), &clean_dir, 1_000_000, SHARDS)
            .expect("reopen clean");
    assert!(
        chaos_report.caught_up_ops[FAULTY] > 0,
        "the lagging shard must replay ops from the donor WAL, got {:?}",
        chaos_report.caught_up_ops
    );
    assert_eq!(
        chaos.combined_digest(),
        clean.combined_digest(),
        "merged digest after catch-up must match a clean replay"
    );
    assert_eq!(chaos_report.combined_digest, chaos.combined_digest());
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn enospc_on_one_shard_degrades_only_that_shard() {
    const SHARDS: u32 = 2;
    const FAULTY: usize = 1;
    let stream = gen_stream(0xE105C, 4 * BATCH);

    let dir = scratch("enospc");
    let ios: Vec<IoHandle> = (0..SHARDS as usize)
        .map(|i| {
            if i == FAULTY {
                let plan = IoFaultPlan::new().with_fault(IoFault {
                    op: IoOp::Write,
                    class: IoPathClass::Wal,
                    index: 1,
                    kind: IoFaultKind::NoSpace { span: 1000 },
                });
                IoHandle::chaos(plan, RetryPolicy::default().no_sleep())
            } else {
                IoHandle::real()
            }
        })
        .collect();
    // MentionExtraction so the emitted spans below are non-empty (the
    // untrained FullGlobal classifier validates nothing).
    let (mut sharded, _) = ShardedGlobalizer::open_with_ios(
        pipeline(1, cfg(AblationMode::MentionExtraction)),
        &dir,
        100,
        SHARDS,
        None,
        ios,
    )
    .expect("open");

    let mut chunks = stream.chunks(BATCH);
    // The first batch commits on shard 0 and hits ENOSPC on shard 1 —
    // the batch is still acknowledged (a healthy shard committed it)
    // and the casualty is wedged, not the store.
    sharded
        .process_batch(chunks.next().expect("chunk").to_vec())
        .expect("one full disk must not reject the batch");
    assert!(sharded.is_wedged(FAULTY));
    let modes = sharded.shard_modes();
    assert_eq!(
        modes[FAULTY],
        DegradationMode::ReadOnly,
        "the ENOSPC shard must floor at read-only, got {modes:?}"
    );
    assert_eq!(modes[0], DegradationMode::Healthy, "shard 0 must stay healthy: {modes:?}");
    assert_eq!(
        sharded.admission_mode(),
        DegradationMode::Healthy,
        "the admission gate follows the best shard"
    );
    assert_eq!(
        sharded.worst_mode(),
        DegradationMode::ReadOnly,
        "monitoring surfaces the worst shard"
    );

    // The rest of the stream keeps flowing through the healthy shard.
    let mut spans = Vec::new();
    for chunk in chunks {
        sharded.process_batch(chunk.to_vec()).expect("healthy shards keep admitting");
        spans = sharded.finalize().expect("finalize");
    }
    assert!(
        spans.iter().any(|s| !s.is_empty()),
        "the degraded store must still emit mentions from its healthy shards"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
