//! Workspace-level property tests on the core invariants the pipeline
//! depends on.

use proptest::prelude::*;

use ner_globalizer::eval::{evaluate, evaluate_emd};
use ner_globalizer::nn::{cosine_distance, l2_normalized, Matrix};
use ner_globalizer::text::{decode_bio, encode_bio, BioTag, EntityType, Span};

fn span_strategy(max_tokens: usize) -> impl Strategy<Value = Span> {
    (0..max_tokens - 1, 1..3usize, 0..EntityType::COUNT).prop_map(move |(start, len, ty)| {
        let end = (start + len).min(max_tokens);
        Span::new(start, end.max(start + 1), EntityType::from_index(ty))
    })
}

/// Sorted, non-overlapping spans over `max_tokens` tokens.
fn disjoint_spans(max_tokens: usize) -> impl Strategy<Value = Vec<Span>> {
    prop::collection::vec(span_strategy(max_tokens), 0..6).prop_map(|mut spans| {
        spans.sort_by_key(|s| (s.start, s.end));
        let mut kept: Vec<Span> = Vec::new();
        for s in spans {
            if kept.last().is_none_or(|k| k.end <= s.start) {
                kept.push(s);
            }
        }
        kept
    })
}

proptest! {
    /// BIO round trip: encode then decode restores exactly the spans.
    #[test]
    fn bio_encode_decode_round_trip(spans in disjoint_spans(16)) {
        let tags = encode_bio(16, &spans);
        prop_assert_eq!(decode_bio(&tags), spans);
    }

    /// Decoding arbitrary tag sequences yields valid, disjoint, sorted
    /// spans covering only in-range tokens.
    #[test]
    fn bio_decode_is_total_and_valid(
        raw in prop::collection::vec(0..BioTag::COUNT, 0..24)
    ) {
        let tags: Vec<BioTag> = raw.iter().map(|&i| BioTag::from_index(i)).collect();
        let spans = decode_bio(&tags);
        for w in spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlap: {:?}", w);
        }
        for s in &spans {
            prop_assert!(s.start < s.end && s.end <= tags.len());
        }
        // Every B tag starts a span.
        let b_count = tags.iter().filter(|t| matches!(t, BioTag::B(_))).count();
        prop_assert!(spans.len() >= b_count);
    }

    /// Evaluating gold against itself is always perfect; against empty
    /// predictions precision/recall stay in range.
    #[test]
    fn evaluation_bounds(spans in disjoint_spans(16)) {
        let gold = vec![spans.clone()];
        let perfect = evaluate(&gold, &gold.clone());
        prop_assert!((perfect.macro_f1() - 1.0).abs() < 1e-12);
        let empty = evaluate(&gold, &[vec![]]);
        for ty in EntityType::ALL {
            let s = empty.of(ty);
            prop_assert!((0.0..=1.0).contains(&s.precision()));
            prop_assert!((0.0..=1.0).contains(&s.recall()));
            prop_assert!((0.0..=1.0).contains(&s.f1()));
        }
        let emd = evaluate_emd(&gold, &gold.clone());
        prop_assert!(spans.is_empty() || (emd.f1() - 1.0).abs() < 1e-12);
    }

    /// Cosine distance is a bounded, symmetric, scale-invariant
    /// pseudo-metric — the geometry clustering relies on.
    #[test]
    fn cosine_distance_properties(
        a in prop::collection::vec(-10.0f32..10.0, 4),
        b in prop::collection::vec(-10.0f32..10.0, 4),
        scale in 0.1f32..50.0,
    ) {
        let d = cosine_distance(&a, &b);
        prop_assert!((0.0..=2.0 + 1e-5).contains(&d));
        prop_assert!((d - cosine_distance(&b, &a)).abs() < 1e-5, "symmetry");
        let scaled: Vec<f32> = a.iter().map(|x| x * scale).collect();
        prop_assert!((d - cosine_distance(&scaled, &b)).abs() < 1e-3, "scale invariance");
        prop_assert!(cosine_distance(&a, &a) < 1e-5, "identity");
    }

    /// L2 normalization is idempotent and produces unit vectors.
    #[test]
    fn l2_normalization_idempotent(
        v in prop::collection::vec(-10.0f32..10.0, 3)
            .prop_filter("non-zero", |v| v.iter().map(|x| x * x).sum::<f32>() > 1e-3)
    ) {
        let n1 = l2_normalized(&v);
        let n2 = l2_normalized(&n1);
        let norm: f32 = n1.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-4);
        for (a, b) in n1.iter().zip(&n2) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// GEMM distributes over vector application:
    /// (A·B)·x == A·(B·x) within float tolerance.
    #[test]
    fn matmul_is_associative_on_vectors(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
        x in prop::collection::vec(-2.0f32..2.0, 2),
    ) {
        let a = Matrix::from_vec(3, 2, a);
        let b = Matrix::from_vec(2, 3, b);
        let x = Matrix::from_vec(3, 1, {
            let mut v = x;
            v.push(0.5);
            v
        });
        let left = a.matmul(&b).matmul(&x);
        let right = a.matmul(&b.matmul(&x));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "associativity violated: {l} vs {r}");
        }
    }
}
