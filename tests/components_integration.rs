//! Cross-crate integration below the full pipeline: tokenizer → CTrie →
//! clustering → classifier, exercised with controlled embeddings so the
//! §V mechanics can be verified exactly.

use ner_globalizer::cluster::agglomerative;
use ner_globalizer::core::{CandidateExample, ClassifierConfig, EntityClassifier};
use ner_globalizer::ctrie::CTrie;
use ner_globalizer::nn::Matrix;
use ner_globalizer::text::{tokenize, EntityType};

/// Builds a synthetic "phrase embedding" for a mention: direction
/// encodes the underlying sense (axis per sense), with slight jitter.
fn sense_embedding(axis: usize, jitter: f32, dim: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    v[axis] = 1.0;
    v[(axis + 1) % dim] = jitter;
    v
}

#[test]
fn ambiguous_surface_resolves_into_typed_clusters() {
    // Simulated mentions of the surface "washington": 4 person-sense,
    // 3 location-sense, embedded on different axes.
    let dim = 8;
    let mut mentions = Vec::new();
    for i in 0..4 {
        mentions.push(sense_embedding(0, 0.05 * i as f32, dim));
    }
    for i in 0..3 {
        mentions.push(sense_embedding(3, 0.05 * i as f32, dim));
    }
    let clustering = agglomerative(&mentions, 0.5);
    assert_eq!(clustering.n_clusters, 2, "two senses, two clusters");

    // Train a tiny classifier whose classes live on those axes: axis 0 =
    // Person, axis 3 = Location, axis 5 = non-entity.
    let mut examples = Vec::new();
    for (axis, class) in [(0usize, 0usize), (3, 1), (5, EntityType::COUNT)] {
        for j in 0..25 {
            let rows = [sense_embedding(axis, 0.02 * j as f32, dim)];
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            examples.push(CandidateExample {
                locals: Matrix::from_rows(&refs),
                class,
            });
        }
    }
    let mut clf = EntityClassifier::new(ClassifierConfig {
        dim,
        hidden: 16,
        max_epochs: 60,
        patience: 15,
        seed: 5,
        ..Default::default()
    });
    clf.fit(&examples);

    // Classify each discovered cluster through the global embedding.
    let groups = clustering.groups();
    let mut labels = Vec::new();
    for g in &groups {
        let rows: Vec<&[f32]> = g.iter().map(|&i| mentions[i].as_slice()).collect();
        let locals = Matrix::from_rows(&rows);
        labels.push(clf.predict(&locals));
    }
    labels.sort_by_key(|l| l.map(|t| t.index()).unwrap_or(99));
    assert_eq!(
        labels,
        vec![Some(EntityType::Person), Some(EntityType::Location)],
        "clusters must be typed by their sense"
    );
}

#[test]
fn tokenizer_feeds_ctrie_scan_cleanly() {
    // Raw tweets → tokenizer → CTrie scan, the §V-A loop.
    let mut trie = CTrie::new();
    trie.insert(&["andy", "beshear"]);
    trie.insert(&["coronavirus"]);
    trie.insert(&["us"]);

    let tweets = [
        "thanks @GovOffice and Andy Beshear for the #coronavirus update",
        "CORONAVIRUS cases rising in the US !!!",
        "they told us: stay home",
    ];
    let mut found = Vec::new();
    for t in tweets {
        let tokens: Vec<String> = tokenize(t).into_iter().map(|t| t.text).collect();
        for occ in trie.extract_mentions(&tokens, 4) {
            found.push(occ.surface);
        }
    }
    assert_eq!(
        found,
        vec!["andy beshear", "coronavirus", "coronavirus", "us", "us"],
        "scan must fold case and hashtag markers and find all mentions"
    );
}

#[test]
fn non_entity_cluster_is_rejected_by_the_classifier() {
    let dim = 8;
    let mut examples = Vec::new();
    for (axis, class) in [(0usize, 0usize), (5, EntityType::COUNT)] {
        for j in 0..30 {
            let rows = [sense_embedding(axis, 0.02 * j as f32, dim)];
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            examples.push(CandidateExample { locals: Matrix::from_rows(&refs), class });
        }
    }
    let mut clf = EntityClassifier::new(ClassifierConfig {
        dim,
        hidden: 16,
        max_epochs: 60,
        patience: 15,
        seed: 8,
        ..Default::default()
    });
    clf.fit(&examples);

    // A pronoun-like cluster living on the non-entity axis.
    let rows: Vec<Vec<f32>> = (0..5).map(|j| sense_embedding(5, 0.03 * j as f32, dim)).collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let pred = clf.predict(&Matrix::from_rows(&refs));
    assert_eq!(pred, None, "non-entity cluster must be filtered out");
    // And the confidence-gated variant agrees.
    assert_eq!(clf.predict_confident(&Matrix::from_rows(&refs), 0.35), None);
}
