//! Storage chaos harness: seeded IO-fault schedules injected under the
//! durable pipeline, at 1 and 4 worker threads.
//!
//! The invariant under test (the "chaos contract"):
//!
//! 1. **No panic, typed errors only** — every injected fault surfaces
//!    as a typed `DurableError`/`DegradationReport`, never a panic, on
//!    any path reachable from ingestion.
//! 2. **Bitwise or degraded** — a chaos run either finishes bitwise
//!    identical to the clean run (all faults absorbed losslessly) or
//!    reports typed degradation.
//! 3. **Recovery heals** — after faults clear, reopening the chaos
//!    store replays to a state bitwise identical to reopening the
//!    never-faulted store, provided no *lossy* degradation
//!    (`spill_losses`) was recorded.
//! 4. **Chaos is deterministic** — the same fault seed produces the
//!    same spans, digest and degradation counters at 1 and 4 threads
//!    (all store IO runs on the caller thread, so the fault schedule
//!    lands identically).
//!
//! Also here: the fsync-ordering regression test (a finalize mark whose
//! commit fsync fails must not be durable — the old append-then-sync
//! split acked records that could replay twice) and the
//! rotation/compaction/prune fault interplay of satellite 3.

use std::path::{Path, PathBuf};

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, DegradationCause, DegradationMode, DurableError,
    DurableGlobalizer, EntityClassifier, GlobalizerConfig, NerGlobalizer, PhraseEmbedder,
    PhraseEmbedderConfig, RetentionPolicy,
};
use ner_globalizer::encoder::{ContextualTagger, SentenceEncoding, SequenceTagger};
use ner_globalizer::nn::Matrix;
use ner_globalizer::runtime::faults::{
    IoFault, IoFaultKind, IoFaultPlan, IoOp, IoPathClass, SplitMix64,
};
use ner_globalizer::runtime::Executor;
use ner_globalizer::store::{IoHandle, RetryPolicy, SnapshotStore, StoreError, Wal};
use ner_globalizer::text::{BioTag, EntityType, Span};

const DIM: usize = 8;

/// Deterministic stand-in for Local NER: capitalized tokens tag as
/// B-PER, embeddings are a case-folded hash one-hot.
struct HashTagger;

impl SequenceTagger for HashTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for HashTagger {
    fn dim(&self) -> usize {
        DIM
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut emb = Matrix::zeros(tokens.len(), DIM);
        for (i, t) in tokens.iter().enumerate() {
            let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
            emb.row_mut(i)[h % DIM] = 1.0;
        }
        let tags = self.tag(tokens);
        SentenceEncoding { embeddings: emb, tags, probs: Matrix::zeros(tokens.len(), BioTag::COUNT) }
    }
}

fn pipeline(threads: usize, cfg: GlobalizerConfig) -> NerGlobalizer<HashTagger> {
    NerGlobalizer::new(
        HashTagger,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() }),
        cfg,
    )
    .with_executor(Executor::new(threads))
}

fn full_cfg(retention: RetentionPolicy) -> GlobalizerConfig {
    GlobalizerConfig { ablation: AblationMode::FullGlobal, retention, ..Default::default() }
}

fn gen_stream(seed: u64, n: usize) -> Vec<Vec<String>> {
    const VOCAB: [&str; 20] = [
        "Beshear", "Italy", "Madrid", "Wolves", "Andy", "Breonna", "Louisville", "Taylor",
        "spoke", "won", "today", "about", "stream", "covid", "rally", "again", "masks", "court",
        "protest", "governor",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let len = 3 + rng.next_below(6) as usize;
            (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect()
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngl-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const BATCH: usize = 10;
const CKPT: usize = 3;
const SPILL_BUDGET: usize = 4 * 1024;

/// Opens a durable globalizer, retrying through open-time faults (the
/// fault schedule advances with every attempted IO call, so a bounded
/// number of reopens always gets through).
fn open_retrying(
    threads: usize,
    dir: &Path,
    io: &IoHandle,
) -> DurableGlobalizer<HashTagger> {
    for _ in 0..100 {
        match DurableGlobalizer::open_with_io(
            pipeline(threads, full_cfg(RetentionPolicy::SpillCold(SPILL_BUDGET))),
            dir,
            CKPT,
            None,
            io.clone(),
        ) {
            Ok((durable, _)) => return durable,
            Err(DurableError::Store(_)) => continue,
            Err(e) => panic!("open failed with a non-store error: {e}"),
        }
    }
    panic!("store never opened within 100 attempts — fault schedule did not clear");
}

struct ChaosOutcome {
    spans: Vec<Vec<Span>>,
    digest: u64,
    report: ner_globalizer::core::DegradationReport,
}

/// Drives the full stream through a chaos store, retrying every
/// rejected operation until it commits (faults are index-scheduled, so
/// retries eventually pass). Every error must be typed — a panic
/// anywhere fails the test.
fn run_chaos(threads: usize, dir: &Path, plan: IoFaultPlan) -> ChaosOutcome {
    let io = IoHandle::chaos(plan, RetryPolicy::default().no_sleep());
    let mut durable = open_retrying(threads, dir, &io);
    let stream = gen_stream(0xC4A05, 8 * BATCH);
    let mut spans: Vec<Vec<Span>> = Vec::new();
    for chunk in stream.chunks(BATCH) {
        let mut attempts = 0;
        while let Err(e) = durable.process_batch(chunk.to_vec()) {
            assert!(matches!(e, DurableError::Store(_)), "untyped batch error: {e}");
            attempts += 1;
            assert!(attempts < 100, "batch never committed: {e}");
        }
        let mut attempts = 0;
        spans = loop {
            match durable.finalize() {
                Ok(out) => break out,
                Err(e) => {
                    assert!(matches!(e, DurableError::Store(_)), "untyped finalize error: {e}");
                    attempts += 1;
                    assert!(attempts < 100, "finalize never committed: {e}");
                }
            }
        };
    }
    assert!(!durable.has_pending_finalize(), "retried finalizes must all have committed");
    ChaosOutcome {
        spans,
        digest: durable.inner().state_digest(),
        report: durable.degradation(),
    }
}

/// Reopens `dir` with real IO and a fresh pipeline, returning the
/// recovered digest and full state bytes.
fn recover(threads: usize, dir: &Path) -> (u64, Vec<u8>) {
    let (durable, _) = DurableGlobalizer::open(
        pipeline(threads, full_cfg(RetentionPolicy::SpillCold(SPILL_BUDGET))),
        dir,
        CKPT,
    )
    .expect("recovery with faults cleared must succeed");
    (durable.inner().state_digest(), durable.inner().export_state_bytes().to_vec())
}

#[test]
fn seeded_chaos_sweep_is_bitwise_or_degraded_and_recovers() {
    // Reference: the same stream through a never-faulted store.
    let clean_dir = scratch("sweep-clean");
    let clean = run_chaos(1, &clean_dir, IoFaultPlan::new());
    assert!(!clean.report.is_degraded(), "clean run must not degrade");
    assert_eq!(clean.report.mode(), DegradationMode::Healthy);
    let clean_recovered = recover(1, &clean_dir);

    let mut any_fault_landed = false;
    for seed in 0..6u64 {
        let mut per_thread: Vec<ChaosOutcome> = Vec::new();
        for threads in [1usize, 4] {
            let plan = IoFaultPlan::seeded(seed, 12, 200);
            assert!(!plan.is_empty(), "seeded plan {seed} is empty");
            let dir = scratch(&format!("sweep-{seed}-{threads}t"));
            let outcome = run_chaos(threads, &dir, plan);

            let touched = outcome.report.is_degraded() || outcome.report.io_retries > 0;
            any_fault_landed |= touched;

            if !outcome.report.is_degraded() {
                // Every fault was absorbed (retries): bitwise clean.
                assert_eq!(
                    outcome.spans, clean.spans,
                    "seed {seed} {threads}t: undegraded run diverged from clean spans"
                );
                assert_eq!(
                    outcome.digest, clean.digest,
                    "seed {seed} {threads}t: undegraded run diverged from clean digest"
                );
            } else {
                // Degradation must be typed and self-describing.
                assert_ne!(
                    outcome.report.mode(),
                    DegradationMode::Healthy,
                    "seed {seed} {threads}t: degraded report claims healthy"
                );
            }

            // Faults cleared: recovery replays the logged operations
            // fault-free. Without lossy degradation the result is
            // bitwise identical to recovering the never-faulted store.
            let (digest, state) = recover(threads, &dir);
            if outcome.report.spill_losses == 0 {
                assert_eq!(
                    digest, clean_recovered.0,
                    "seed {seed} {threads}t: recovered digest diverged from clean"
                );
                assert_eq!(
                    state, clean_recovered.1,
                    "seed {seed} {threads}t: recovered state bytes diverged from clean"
                );
            }
            per_thread.push(outcome);
            let _ = std::fs::remove_dir_all(&dir);
        }

        // Chaos determinism: identical schedule, identical outcome at
        // both thread counts (store IO runs on the caller thread).
        let (a, b) = (&per_thread[0], &per_thread[1]);
        assert_eq!(a.spans, b.spans, "seed {seed}: spans differ across thread counts");
        assert_eq!(a.digest, b.digest, "seed {seed}: digest differs across thread counts");
        assert_eq!(
            (a.report.wal_commit_failures, a.report.snapshot_failures, a.report.io_retries),
            (b.report.wal_commit_failures, b.report.snapshot_failures, b.report.io_retries),
            "seed {seed}: degradation counters differ across thread counts"
        );
    }
    assert!(any_fault_landed, "sweep injected no faults — schedules too sparse to test anything");
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// A randomized-seed smoke run for CI: one fresh schedule per
/// invocation, seed printed so a failure is reproducible by pinning it
/// in the sweep above. Uses process entropy (id + time), not wall-clock
/// randomness in the assertions themselves.
#[test]
fn randomized_seed_chaos_smoke() {
    let seed = match std::env::var("NGL_CHAOS_SEED") {
        Ok(raw) => raw.trim().parse::<u64>().expect("NGL_CHAOS_SEED must be a u64"),
        Err(_) => {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos() as u64;
            t ^ (std::process::id() as u64) << 32
        }
    };
    println!("chaos smoke seed: {seed} (rerun with NGL_CHAOS_SEED={seed})");
    let dir = scratch("smoke");
    let outcome = run_chaos(1, &dir, IoFaultPlan::seeded(seed, 8, 150));
    // The contract subset that holds for *any* seed: typed degradation
    // or none, and fault-free recovery once the schedule is exhausted.
    if outcome.report.is_degraded() {
        assert_ne!(outcome.report.mode(), DegradationMode::Healthy, "seed {seed}");
    }
    let (digest, _) = recover(1, &dir);
    if outcome.report.spill_losses == 0
        && outcome.report.spill_pins == 0
        && outcome.report.snapshot_failures == 0
    {
        assert_eq!(digest, outcome.digest, "seed {seed}: lossless run must recover its own state");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_degrades_to_read_only_and_clears_when_space_returns() {
    let dir = scratch("enospc");
    // WAL write indices on a fresh store: #0 creates segment zero at
    // open, #1 is the first batch commit. A span of 3 rejects that
    // commit and the rollback/repair writes behind it.
    let plan = IoFaultPlan::new().with_fault(IoFault {
        op: IoOp::Write,
        class: IoPathClass::Wal,
        index: 1,
        kind: IoFaultKind::NoSpace { span: 3 },
    });
    let io = IoHandle::chaos(plan, RetryPolicy::default().no_sleep());
    let (mut durable, _) = DurableGlobalizer::open_with_io(
        pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
        &dir,
        100,
        None,
        io,
    )
    .expect("open");
    let batch = gen_stream(0xE105, BATCH);

    let err = durable.process_batch(batch.clone()).expect_err("disk is full");
    assert!(
        matches!(&err, DurableError::Store(StoreError::Io(e)) if e.raw_os_error() == Some(28)),
        "expected a typed ENOSPC, got: {err}"
    );
    let report = durable.degradation();
    assert!(report.read_only, "ENOSPC must flip the store read-only");
    assert_eq!(report.mode(), DegradationMode::ReadOnly);
    assert!(report.wal_commit_failures >= 1);
    assert!(
        report.events.iter().any(|e| e.cause == DegradationCause::DiskFull),
        "degradation events must name the disk-full cause"
    );
    assert_eq!(durable.inner().tweet_base().len(), 0, "rejected batch must not apply");

    // Space comes back (the fault span ends): the same batch commits,
    // applies exactly once, and read-only mode clears.
    let mut ok = false;
    for _ in 0..10 {
        if durable.process_batch(batch.clone()).is_ok() {
            ok = true;
            break;
        }
    }
    assert!(ok, "batch never committed after space returned");
    let report = durable.degradation();
    assert!(!report.read_only, "a successful commit must clear read-only mode");
    assert_ne!(report.mode(), DegradationMode::ReadOnly);
    assert_eq!(durable.inner().tweet_base().len(), batch.len(), "batch must apply exactly once");

    durable.finalize().expect("finalize");
    drop(durable);
    let (recovered, report) = DurableGlobalizer::open(
        pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
        &dir,
        100,
    )
    .expect("reopen");
    assert_eq!(report.replayed_batches, 1, "exactly one batch record must be durable");
    assert_eq!(recovered.inner().tweet_base().len(), batch.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (fsync ordering): a finalize group whose fsync fails is
/// rolled back, so no finalize mark can be durable ahead of its sync.
/// The pre-fix code appended then synced separately — the unacked mark
/// stayed in the file, and a caller retry double-applied on replay
/// (surfacing as a digest mismatch).
#[test]
fn fsync_failure_rolls_back_the_finalize_mark() {
    let batch = gen_stream(0xF5C, BATCH);
    // WAL sync indices on a fresh store: #0 lands with the first batch
    // commit, #1 with the finalize commit — fail that one.
    let plan = || {
        IoFaultPlan::new().with_fault(IoFault {
            op: IoOp::Sync,
            class: IoPathClass::Wal,
            index: 1,
            kind: IoFaultKind::SyncFail,
        })
    };

    // Crash flavor: the process dies after the failed finalize. On
    // reopen the batch must be durable and the finalize mark must not.
    let dir = scratch("fsync-crash");
    {
        let io = IoHandle::chaos(plan(), RetryPolicy::default().no_sleep());
        let (mut durable, _) = DurableGlobalizer::open_with_io(
            pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
            &dir,
            100,
            None,
            io,
        )
        .expect("open");
        durable.process_batch(batch.clone()).expect("batch commits");
        let err = durable.finalize().expect_err("finalize fsync fails");
        assert!(matches!(err, DurableError::Store(StoreError::Io(_))), "typed error: {err}");
        assert!(durable.has_pending_finalize(), "failed finalize must be stashed, not acked");
    } // dropped mid-degradation: simulated crash
    let (_, report) = DurableGlobalizer::open(
        pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
        &dir,
        100,
    )
    .expect("reopen after crash");
    assert_eq!(report.replayed_batches, 1, "the batch committed before the finalize");
    assert_eq!(
        report.replayed_finalizes, 0,
        "an unsynced finalize mark must never be durable (fsync ordering)"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Retry flavor: the caller retries the finalize instead. The spans
    // surface once, the mark lands exactly once, and replay digest-
    // verifies (the double-apply the old code produced would fail it).
    let want = {
        let dir = scratch("fsync-ref");
        let (mut clean, _) = DurableGlobalizer::open(
            pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
            &dir,
            100,
        )
        .expect("open clean");
        clean.process_batch(batch.clone()).expect("batch");
        let out = clean.finalize().expect("finalize");
        let _ = std::fs::remove_dir_all(&dir);
        out
    };
    let dir = scratch("fsync-retry");
    {
        let io = IoHandle::chaos(plan(), RetryPolicy::default().no_sleep());
        let (mut durable, _) = DurableGlobalizer::open_with_io(
            pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
            &dir,
            100,
            None,
            io,
        )
        .expect("open");
        durable.process_batch(batch.clone()).expect("batch commits");
        durable.finalize().expect_err("finalize fsync fails");
        let got = durable.finalize().expect("retry commits the stashed mark");
        assert_eq!(got, want, "retried finalize must surface the stashed spans");
        assert!(!durable.has_pending_finalize());
        assert!(durable.degradation().wal_commit_failures >= 1, "the failure left a trace");
    }
    let (_, report) = DurableGlobalizer::open(
        pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
        &dir,
        100,
    )
    .expect("reopen after retry — a duplicated mark would digest-mismatch here");
    assert_eq!(report.replayed_finalizes, 1, "the retried mark must be durable exactly once");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3, store level: a fault mid-rotation must neither leak a
/// live segment ahead of the log nor let compaction eat unsnapshotted
/// records.
#[test]
fn rotation_fault_interplay_leaks_no_segments_and_compacts_nothing_early() {
    let dir = scratch("rotate");
    let records: Vec<(u8, Vec<u8>)> =
        (0u8..5).map(|i| (1, vec![i; 64])).collect();

    // Rotation's segment-create write fails (torn to nothing).
    let plan = IoFaultPlan::new().with_fault(IoFault {
        op: IoOp::Write,
        class: IoPathClass::Wal,
        // #0 creates segment zero, #1..=#5 are the five commits below.
        index: 6,
        kind: IoFaultKind::TornWrite { keep_pct: 0 },
    });
    let io = IoHandle::chaos(plan, RetryPolicy::none().no_sleep());
    let mut wal = Wal::open_with_io(&dir, 64 * 1024, io).expect("open");
    for (tag, payload) in &records {
        wal.commit(&[(*tag, payload.as_slice())]).expect("commit");
    }
    wal.rotate().expect_err("rotation hits the injected fault");

    // No leak: appends continue in segment zero, and no wal-00000001
    // exists on disk.
    let seg1 = dir.join("wal-00000001.log");
    assert!(!seg1.exists(), "failed rotation must not leave a segment behind");
    wal.commit(&[(9, &[0xAB; 16])]).expect("log keeps accepting appends");

    // No premature compaction: compact_below(active) after the failed
    // rotation has nothing below the active segment to remove.
    let removed = wal.compact_below(0).expect("compact");
    assert_eq!(removed, 0, "nothing may be compacted before a successful rotation");
    let replay = wal.replay().expect("replay");
    assert_eq!(replay.records.len(), records.len() + 1, "every committed record survives");

    // Faults exhausted: the next rotation succeeds and compaction then
    // removes exactly the sealed segment.
    let active = wal.rotate().expect("clean rotation");
    assert_eq!(active, 1);
    assert!(seg1.exists());
    assert_eq!(wal.compact_below(active).expect("compact"), 1, "exactly segment zero is sealed");
    assert!(!dir.join("wal-00000000.log").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3, snapshot level: a fault in the snapshot tmp-rename
/// keeps the previous snapshot live, and a later prune failure is
/// typed — `latest()` never regresses past a prune.
#[test]
fn snapshot_write_and_prune_faults_keep_the_newest_valid_snapshot() {
    let dir = scratch("snapprune");
    let plan = IoFaultPlan::new()
        // Second snapshot's publish rename fails...
        .with_fault(IoFault {
            op: IoOp::Rename,
            class: IoPathClass::Snapshot,
            index: 1,
            kind: IoFaultKind::Transient,
        })
        // ...and the first prune's remove fails (remove #0 is the
        // failed write's tmp-file cleanup).
        .with_fault(IoFault {
            op: IoOp::Remove,
            class: IoPathClass::Snapshot,
            index: 1,
            kind: IoFaultKind::Transient,
        });
    let io = IoHandle::chaos(plan, RetryPolicy::none().no_sleep());
    let snaps = SnapshotStore::open_with_io(&dir, io).expect("open");

    snaps.write(10, b"ten").expect("first snapshot");
    let err = snaps.write(20, b"twenty").expect_err("publish rename faulted");
    assert!(matches!(err, StoreError::Io(_)), "typed: {err}");
    // The failed write must not have clobbered the previous snapshot,
    // and must not have left its tmp file behind.
    let (seq, payload) = snaps.latest().expect("latest").expect("one snapshot live");
    assert_eq!((seq, payload.as_slice()), (10, b"ten".as_slice()));
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "failed snapshot left tmp files: {leftovers:?}");

    // Retried write (faults exhausted) succeeds; the faulted prune is
    // a typed error and removes nothing it shouldn't.
    snaps.write(20, b"twenty").expect("retry");
    snaps.write(30, b"thirty").expect("third snapshot");
    let err = snaps.prune_below(30).expect_err("prune remove faulted");
    assert!(matches!(err, StoreError::Io(_)), "typed: {err}");
    let (seq, _) = snaps.latest().expect("latest").expect("live");
    assert_eq!(seq, 30, "a failed prune must never regress the newest snapshot");
    // Retrying the prune is safe and finishes the job.
    snaps.prune_below(30).expect("prune retry");
    let mut left = snaps.list().expect("list");
    left.sort_unstable();
    assert_eq!(left, vec![30]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3, durable level: a failed snapshot write degrades to
/// WAL-only (typed, finalize still succeeds) and the next finalize
/// heals by retrying the snapshot.
#[test]
fn snapshot_failure_degrades_to_wal_only_and_heals_on_retry() {
    let dir = scratch("walonly");
    // First snapshot publish (tmp-file write) fails.
    let plan = IoFaultPlan::new().with_fault(IoFault {
        op: IoOp::Write,
        class: IoPathClass::Snapshot,
        index: 0,
        kind: IoFaultKind::NoSpace { span: 1 },
    });
    let io = IoHandle::chaos(plan, RetryPolicy::default().no_sleep());
    let (mut durable, _) = DurableGlobalizer::open_with_io(
        pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
        &dir,
        1, // snapshot every finalize
        None,
        io,
    )
    .expect("open");
    let stream = gen_stream(0x5A10, 2 * BATCH);

    durable.process_batch(stream[..BATCH].to_vec()).expect("batch");
    durable.finalize().expect("finalize must succeed though its snapshot failed");
    let report = durable.degradation();
    assert!(report.snapshot_lagging, "failed snapshot must flag WAL-only operation");
    assert_eq!(report.mode(), DegradationMode::WalOnly);
    assert!(report.snapshot_failures >= 1);
    assert!(report.events.iter().any(|e| e.cause == DegradationCause::DiskFull));
    assert_eq!(durable.stats().snapshots, 0);

    // The WAL alone still recovers everything acknowledged so far.
    let (probe, recovery) = DurableGlobalizer::open(
        pipeline(1, full_cfg(RetentionPolicy::Unbounded)),
        &dir,
        1,
    )
    .expect("WAL-only store recovers");
    assert_eq!(recovery.snapshot_seq, None, "no snapshot exists yet");
    assert_eq!(probe.inner().state_digest(), durable.inner().state_digest());
    drop(probe);

    // Next finalize retries the snapshot; the fault span has passed.
    durable.process_batch(stream[BATCH..].to_vec()).expect("batch");
    durable.finalize().expect("finalize");
    let report = durable.degradation();
    assert!(!report.snapshot_lagging, "a successful snapshot must end WAL-only mode");
    assert_eq!(durable.stats().snapshots, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
