//! Kernel-dispatch equivalence contract: the full pipeline — encode,
//! extract, cluster, score, finalize — must produce **bitwise
//! identical** outputs and candidate state whether the vector kernels
//! run in scalar or SIMD mode, at any thread count. The kernels pin a
//! fixed 8-lane accumulation order precisely so that `NGL_KERNEL` is a
//! pure speed knob, never a results knob.
//!
//! All mode flips live in ONE test function: `set_kernel_mode` is
//! process-global, and the harness runs sibling tests concurrently.

use ner_globalizer::core::{
    ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer, PhraseEmbedder,
    PhraseEmbedderConfig,
};
use ner_globalizer::encoder::{
    ContextualTagger, EncoderConfig, SentenceEncoding, SequenceTagger, TokenEncoder,
};
use ner_globalizer::nn::{set_kernel_mode, KernelMode};
use ner_globalizer::runtime::faults::SplitMix64;
use ner_globalizer::runtime::Executor;
use ner_globalizer::text::{BioTag, EntityType, Span};

const DIM: usize = 8;
const BATCH: usize = 4;

/// Real encoder embeddings with a deterministic tagging rule on top
/// (capitalized → B-PER), so the stream grows non-trivial candidate
/// state regardless of the untrained head.
#[derive(Clone)]
struct CapTagger(TokenEncoder);

impl SequenceTagger for CapTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for CapTagger {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut enc = self.0.encode(tokens);
        enc.tags = self.tag(tokens);
        enc
    }
}

fn pipeline(exec: Executor) -> NerGlobalizer<CapTagger> {
    let encoder = TokenEncoder::new(EncoderConfig {
        embed_dim: 8,
        hidden_dim: 12,
        out_dim: DIM,
        window: 1,
        seed: 3,
        ..Default::default()
    });
    let phrase = PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() });
    let classifier = EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() });
    NerGlobalizer::new(CapTagger(encoder), phrase, classifier, GlobalizerConfig::default())
        .with_executor(exec)
}

fn gen_stream(seed: u64, n: usize) -> Vec<(u64, Vec<String>)> {
    const VOCAB: [&str; 10] = [
        "Beshear", "Italy", "Madrid", "Wolves", "spoke", "won", "today", "about", "covid", "rally",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let len = 3 + rng.next_below(5) as usize;
            let tokens = (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect();
            (500 + i as u64, tokens)
        })
        .collect()
}

fn drive(p: &mut NerGlobalizer<CapTagger>, stream: &[(u64, Vec<String>)]) -> Vec<Vec<Span>> {
    let mut out = Vec::new();
    for chunk in stream.chunks(BATCH) {
        let (_, report) = p.try_process_batch_with_ids(chunk.to_vec());
        assert!(report.all_ok());
        out = p.finalize();
    }
    out
}

/// Per-surface candidate state: discrete structure plus every f32 as
/// raw bits (mention embeddings, cluster centroids).
type Fingerprint = Vec<(String, Vec<u64>, Vec<u32>)>;

fn fingerprint(p: &NerGlobalizer<CapTagger>) -> Fingerprint {
    p.candidate_base()
        .iter()
        .map(|(surface, e)| {
            let mut nums: Vec<u64> = Vec::new();
            let mut bits: Vec<u32> = Vec::new();
            for m in &e.mentions {
                nums.extend([m.tweet as u64, m.start as u64, m.end as u64]);
                bits.extend(m.local_emb.iter().map(|x| x.to_bits()));
            }
            for c in &e.clusters {
                nums.push(u64::MAX);
                nums.extend(c.members.iter().map(|&m| m as u64));
                bits.extend(c.global_emb.iter().map(|x| x.to_bits()));
            }
            (surface.to_string(), nums, bits)
        })
        .collect()
}

fn run(mode: KernelMode, threads: usize, stream: &[(u64, Vec<String>)]) -> (Vec<Vec<Span>>, Fingerprint) {
    set_kernel_mode(mode);
    let exec = if threads <= 1 { Executor::sequential() } else { Executor::new(threads) };
    let mut p = pipeline(exec);
    let out = drive(&mut p, stream);
    (out, fingerprint(&p))
}

#[test]
fn pipeline_is_bitwise_identical_across_kernel_and_thread_matrix() {
    for seed in [7u64, 91] {
        let stream = gen_stream(seed, 16);
        let (ref_out, ref_fp) = run(KernelMode::Scalar, 1, &stream);
        assert!(!ref_fp.is_empty(), "state under test is non-trivial");
        for mode in [KernelMode::Scalar, KernelMode::Simd] {
            for threads in [1usize, 4] {
                let (out, fp) = run(mode, threads, &stream);
                assert_eq!(out, ref_out, "outputs: seed {seed}, {mode:?} × {threads} threads");
                assert_eq!(fp, ref_fp, "state: seed {seed}, {mode:?} × {threads} threads");
            }
        }
    }
    // Leave the process-global dispatch back at its env-driven default.
    set_kernel_mode(KernelMode::Simd);
}
