//! Kill-at-any-byte recovery: the durable store's central promise is
//! that a crash at *any* write boundary — including mid-record — loses
//! at most the torn suffix of the WAL, and recovery lands on a state
//! bitwise identical to a clean run over the records that survived.
//!
//! The harness records a reference state (canonical checkpoint bytes)
//! after every logged operation of a clean durable run, then replays
//! recovery against a copy of the store truncated at **every byte
//! offset** of its WAL (and with single-byte corruptions of the tail),
//! asserting the recovered state is exactly one of the recorded
//! prefixes — never a blend, never a crash. Verified at 1 and 4
//! worker threads; the recovered bytes must also be identical across
//! thread counts (replay rides on the pipeline's parallel-equivalence
//! guarantee).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, DurableError, DurableGlobalizer, EntityClassifier,
    GlobalizerConfig, NerGlobalizer, PhraseEmbedder, PhraseEmbedderConfig,
};
use ner_globalizer::encoder::{ContextualTagger, SentenceEncoding, SequenceTagger};
use ner_globalizer::nn::Matrix;
use ner_globalizer::runtime::faults::SplitMix64;
use ner_globalizer::runtime::Executor;
use ner_globalizer::text::{BioTag, EntityType};

const DIM: usize = 8;
const BATCH: usize = 6;

/// Deterministic stand-in for Local NER: capitalized tokens tag as
/// B-PER, embeddings are a case-folded hash one-hot.
struct HashTagger;

impl SequenceTagger for HashTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for HashTagger {
    fn dim(&self) -> usize {
        DIM
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut emb = Matrix::zeros(tokens.len(), DIM);
        for (i, t) in tokens.iter().enumerate() {
            let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
            emb.row_mut(i)[h % DIM] = 1.0;
        }
        let tags = self.tag(tokens);
        SentenceEncoding { embeddings: emb, tags, probs: Matrix::zeros(tokens.len(), BioTag::COUNT) }
    }
}

fn pipeline(threads: usize) -> NerGlobalizer<HashTagger> {
    NerGlobalizer::new(
        HashTagger,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() }),
        GlobalizerConfig { ablation: AblationMode::FullGlobal, ..Default::default() },
    )
    .with_executor(Executor::new(threads))
}

/// A reproducible token stream with recurring entity surfaces.
fn gen_stream(seed: u64, n: usize) -> Vec<Vec<String>> {
    const VOCAB: [&str; 12] = [
        "Beshear", "Italy", "Madrid", "Wolves", "spoke", "won", "today", "about", "stream",
        "covid", "rally", "again",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let len = 3 + rng.next_below(6) as usize;
            (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect()
        })
        .collect()
}

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngl-walrec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the full durable stream cleanly and records the canonical
/// state bytes keyed by `op_seq` after every logged operation (op 0 is
/// the empty pipeline).
fn record_reference(
    threads: usize,
    checkpoint_every: usize,
    dir: &Path,
    stream: &[Vec<String>],
) -> BTreeMap<u64, Vec<u8>> {
    let (mut durable, report) =
        DurableGlobalizer::open(pipeline(threads), dir, checkpoint_every).expect("open");
    assert_eq!(report.replayed_batches, 0, "reference store must start empty");
    let mut states = BTreeMap::new();
    states.insert(0u64, durable.inner().export_state_bytes().to_vec());
    for chunk in stream.chunks(BATCH) {
        let (_, report) = durable.process_batch(chunk.to_vec()).expect("batch");
        assert!(report.all_ok(), "reference stream is clean by construction");
        states.insert(durable.op_seq(), durable.inner().export_state_bytes().to_vec());
        durable.finalize().expect("finalize");
        assert!(durable.take_finalize_errors().is_empty());
        states.insert(durable.op_seq(), durable.inner().export_state_bytes().to_vec());
    }
    states
}

/// Sorted (seq, path, bytes) of every WAL segment in `dir`.
fn wal_segments(dir: &Path) -> Vec<(u64, PathBuf, Vec<u8>)> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if let Some(seq) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
            let seq: u64 = seq.parse().expect("segment seq");
            let bytes = std::fs::read(&path).expect("segment bytes");
            segs.push((seq, path, bytes));
        }
    }
    segs.sort();
    segs
}

/// Copies every non-WAL file (snapshots, spill) of `src` into `dst`.
fn copy_non_wal(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("copy dst");
    for entry in std::fs::read_dir(src).expect("read src") {
        let path = entry.expect("entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if !name.starts_with("wal-") {
            std::fs::copy(&path, dst.join(&name)).expect("copy file");
        }
    }
}

/// Recovers a (possibly mutilated) store copy and asserts the result
/// is exactly one recorded prefix state; returns the landed op_seq.
fn assert_prefix_recovery(
    dir: &Path,
    threads: usize,
    checkpoint_every: usize,
    reference: &BTreeMap<u64, Vec<u8>>,
    what: &str,
) -> u64 {
    let (durable, report) =
        DurableGlobalizer::open(pipeline(threads), dir, checkpoint_every)
            .unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    let op = durable.op_seq();
    let state = reference
        .get(&op)
        .unwrap_or_else(|| panic!("{what}: landed on unrecorded op {op}"));
    assert_eq!(
        durable.inner().export_state_bytes().as_ref(),
        &state[..],
        "{what}: recovered state at op {op} is not bitwise identical to the clean run"
    );
    assert_eq!(report.digest, durable.inner().state_digest(), "{what}: report digest");
    op
}

/// The truncation sweep for one snapshot cadence: every byte offset of
/// the surviving WAL (later segments deleted, containing segment cut)
/// must recover to a recorded prefix, at 1 thread exhaustively and at
/// 4 threads on a stride (plus both endpoints).
fn sweep(tag: &str, checkpoint_every: usize) {
    let root = scratch_root(tag);
    let stream = gen_stream(0xD5, 4 * BATCH);

    let ref_dir = root.join("clean-1t");
    let reference = record_reference(1, checkpoint_every, &ref_dir, &stream);
    // Thread count must not leak into the durable state bytes.
    let reference_4t = record_reference(4, checkpoint_every, &root.join("clean-4t"), &stream);
    assert_eq!(reference, reference_4t, "{tag}: reference states differ across thread counts");

    let segments = wal_segments(&ref_dir);
    assert!(!segments.is_empty(), "{tag}: no WAL segments to sweep");
    let total: usize = segments.iter().map(|(_, _, b)| b.len()).sum();
    assert!(total > 0, "{tag}: empty WAL");

    let final_op = *reference.keys().next_back().expect("ops");
    let mut landed = Vec::new();
    for cut in 0..=total {
        let case = root.join("case");
        let _ = std::fs::remove_dir_all(&case);
        copy_non_wal(&ref_dir, &case);
        let mut remaining = cut;
        for (seq, _, bytes) in &segments {
            let keep = remaining.min(bytes.len());
            remaining -= keep;
            if keep > 0 {
                std::fs::write(case.join(format!("wal-{seq:08}.log")), &bytes[..keep])
                    .expect("write cut segment");
            }
            // keep == 0: the tear is before this segment — it (and all
            // later ones) never made it to disk.
        }
        let threads = if cut % 7 == 0 || cut == total { 4 } else { 1 };
        let op = assert_prefix_recovery(
            &case,
            threads,
            checkpoint_every,
            &reference,
            &format!("{tag}: cut at byte {cut}/{total} ({threads}t)"),
        );
        landed.push(op);
    }
    // The sweep must be monotone (more surviving bytes never recover
    // *less*) and span from the snapshot floor to the complete run.
    assert!(landed.windows(2).all(|w| w[0] <= w[1]), "{tag}: recovery not prefix-monotone");
    assert_eq!(*landed.last().expect("cases"), final_op, "{tag}: whole WAL must replay fully");
    assert!(
        landed.iter().any(|&op| op > landed[0]),
        "{tag}: sweep never progressed past the floor — nothing was actually replayed"
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_at_any_byte_recovers_a_bitwise_identical_prefix_pure_replay() {
    // Cadence far beyond the stream: no snapshots, the WAL carries
    // every op and the sweep exercises pure replay from empty.
    sweep("replay", 1000);
}

#[test]
fn kill_at_any_byte_recovers_a_bitwise_identical_prefix_with_snapshots() {
    // Snapshot (and compact) every 3 finalizes: recovery = newest
    // surviving snapshot + the WAL suffix, never below the snapshot.
    sweep("snap", 3);
}

/// A long unsnapshotted WAL suffix — several batches per finalize
/// barrier plus trailing unfinalized batches — is the case the
/// concurrent (prewarm-encode) replay path exists for. Recovery must
/// still land bitwise on the clean state at every thread count.
#[test]
fn long_unsnapshotted_suffix_replays_concurrently_to_the_clean_state() {
    let root = scratch_root("suffix");
    let dir = root.join("store");
    let stream = gen_stream(0x5EED, 11 * BATCH);

    // Cadence far beyond the stream: no snapshots, replay carries the
    // whole history. Three batches land between consecutive finalizes;
    // the last two batches are never finalized.
    let (mut durable, _) = DurableGlobalizer::open(pipeline(1), &dir, 1000).expect("open");
    for (i, chunk) in stream.chunks(BATCH).enumerate() {
        let (_, report) = durable.process_batch(chunk.to_vec()).expect("batch");
        assert!(report.all_ok());
        if i % 3 == 2 && i < 9 {
            durable.finalize().expect("finalize");
        }
    }
    let expected = durable.inner().export_state_bytes().to_vec();
    let expected_digest = durable.inner().state_digest();
    let batches = stream.chunks(BATCH).count();
    drop(durable);

    for threads in [1, 4] {
        let (recovered, report) =
            DurableGlobalizer::open(pipeline(threads), &dir, 1000).expect("reopen");
        assert_eq!(report.replayed_batches, batches, "{threads}t: all batches replayed");
        assert_eq!(report.replayed_finalizes, 3, "{threads}t: all barriers replayed");
        assert!(report.snapshot_seq.is_none(), "{threads}t: pure replay by construction");
        assert_eq!(report.digest, expected_digest, "{threads}t: digest");
        assert_eq!(
            recovered.inner().export_state_bytes().as_ref(),
            &expected[..],
            "{threads}t: recovered state must be bitwise identical to the clean run"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A store is bound to the model bundle that wrote it: reopening with
/// a different fingerprint is a typed, immediate error — not a digest
/// mismatch deep into replay.
#[test]
fn mismatched_model_fingerprint_fails_fast() {
    let root = scratch_root("fingerprint");
    let dir = root.join("store");
    let stream = gen_stream(0xFA57, 2 * BATCH);

    let (mut durable, _) =
        DurableGlobalizer::open_with_fingerprint(pipeline(1), &dir, 1000, Some(0xAAAA))
            .expect("create");
    for chunk in stream.chunks(BATCH) {
        durable.process_batch(chunk.to_vec()).expect("batch");
        durable.finalize().expect("finalize");
    }
    drop(durable);

    // Same fingerprint: opens and replays.
    let (same, report) =
        DurableGlobalizer::open_with_fingerprint(pipeline(1), &dir, 1000, Some(0xAAAA))
            .expect("reopen with matching fingerprint");
    assert_eq!(report.replayed_batches, 2);
    drop(same);

    // Different fingerprint: typed rejection carrying both hashes.
    match DurableGlobalizer::open_with_fingerprint(pipeline(1), &dir, 1000, Some(0xBBBB)) {
        Err(DurableError::ModelMismatch { stored, current }) => {
            assert_eq!(stored, 0xAAAA);
            assert_eq!(current, 0xBBBB);
        }
        Err(other) => panic!("expected ModelMismatch, got: {other}"),
        Ok(_) => panic!("mismatched fingerprint must be rejected"),
    }

    // Pre-fingerprint stores (no meta file) adopt the current
    // fingerprint on first open, then enforce it.
    std::fs::remove_file(dir.join("model.meta")).expect("drop meta");
    let (adopted, _) =
        DurableGlobalizer::open_with_fingerprint(pipeline(1), &dir, 1000, Some(0xCCCC))
            .expect("legacy store adopts the fingerprint");
    drop(adopted);
    match DurableGlobalizer::open_with_fingerprint(pipeline(1), &dir, 1000, Some(0xAAAA)) {
        Err(DurableError::ModelMismatch { stored: 0xCCCC, current: 0xAAAA }) => {}
        Err(other) => panic!("expected ModelMismatch after adoption, got: {other}"),
        _ => panic!("adopted fingerprint must be enforced"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn single_bit_flips_in_the_tail_record_are_cut_not_trusted() {
    let root = scratch_root("flip");
    let stream = gen_stream(0xF11A, 3 * BATCH);
    let reference = record_reference(1, 1000, &root.join("clean"), &stream);
    let segments = wal_segments(&root.join("clean"));
    assert_eq!(segments.len(), 1, "pure-replay run should keep one segment");
    let (seq, _, bytes) = &segments[0];

    // Locate the final frame: len u32 LE | tag u8 | fnv1a64 u64 LE | payload.
    let mut off = 0usize;
    let mut last_start = 0usize;
    while off + 13 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 13 + len > bytes.len() {
            break;
        }
        last_start = off;
        off += 13 + len;
    }
    assert_eq!(off, bytes.len(), "clean WAL must parse to the end");
    assert!(last_start > 0, "need at least two records");

    let final_op = *reference.keys().next_back().expect("ops");
    for byte in last_start..bytes.len() {
        for bit in [0u8, 3, 7] {
            let case = root.join("case");
            let _ = std::fs::remove_dir_all(&case);
            copy_non_wal(&root.join("clean"), &case);
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1 << bit;
            std::fs::write(case.join(format!("wal-{seq:08}.log")), &mutated)
                .expect("write flipped segment");
            let op = assert_prefix_recovery(
                &case,
                1,
                1000,
                &reference,
                &format!("flip byte {byte} bit {bit}"),
            );
            assert!(
                op < final_op,
                "flip byte {byte} bit {bit}: a corrupt tail record must not replay as valid"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
