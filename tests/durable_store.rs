//! End-to-end contracts of the durable-state subsystem that are not
//! about crash recovery (that is `wal_recovery.rs`):
//!
//! * **delta checkpoints are cheap** — per-batch WAL bytes stay flat
//!   while the full-snapshot size grows with the stream, so past ~1k
//!   tweets the delta is a small fraction of a snapshot rewrite;
//! * **cold-surface spill is invisible** — `RetentionPolicy::SpillCold`
//!   keeps resident `CandidateBase` memory under the configured cap
//!   while emitting exactly the spans of an unbounded run;
//! * **resume equals one continuous run** — stopping a durable stream
//!   and reopening the store (fresh pipeline, same models) continues
//!   bitwise identically, at 1 and 4 worker threads;
//! * **frozen mentions go stale on trie growth** — the persisted
//!   per-mention CTrie version flags mentions of evicted tweets once
//!   the trie outgrows them.

use std::path::PathBuf;

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, DurableGlobalizer, EntityClassifier, GlobalizerConfig,
    NerGlobalizer, PhraseEmbedder, PhraseEmbedderConfig, RetentionPolicy,
};
use ner_globalizer::encoder::{ContextualTagger, SentenceEncoding, SequenceTagger};
use ner_globalizer::nn::Matrix;
use ner_globalizer::runtime::faults::SplitMix64;
use ner_globalizer::runtime::Executor;
use ner_globalizer::text::{BioTag, EntityType, Span};

const DIM: usize = 8;

/// Deterministic stand-in for Local NER: capitalized tokens tag as
/// B-PER, embeddings are a case-folded hash one-hot.
struct HashTagger;

impl SequenceTagger for HashTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for HashTagger {
    fn dim(&self) -> usize {
        DIM
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        let mut emb = Matrix::zeros(tokens.len(), DIM);
        for (i, t) in tokens.iter().enumerate() {
            let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
            emb.row_mut(i)[h % DIM] = 1.0;
        }
        let tags = self.tag(tokens);
        SentenceEncoding { embeddings: emb, tags, probs: Matrix::zeros(tokens.len(), BioTag::COUNT) }
    }
}

fn pipeline(threads: usize, cfg: GlobalizerConfig) -> NerGlobalizer<HashTagger> {
    NerGlobalizer::new(
        HashTagger,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() }),
        cfg,
    )
    .with_executor(Executor::new(threads))
}

fn full_cfg(retention: RetentionPolicy) -> GlobalizerConfig {
    GlobalizerConfig { ablation: AblationMode::FullGlobal, retention, ..Default::default() }
}

/// A reproducible token stream over a wider surface vocabulary (so
/// spill has many distinct candidates to choose victims from).
fn gen_stream(seed: u64, n: usize) -> Vec<Vec<String>> {
    const VOCAB: [&str; 20] = [
        "Beshear", "Italy", "Madrid", "Wolves", "Andy", "Breonna", "Louisville", "Taylor",
        "spoke", "won", "today", "about", "stream", "covid", "rally", "again", "masks", "court",
        "protest", "governor",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let len = 3 + rng.next_below(6) as usize;
            (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect()
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngl-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn delta_bytes_per_batch_stay_sublinear_in_stream_length() {
    const BATCH: usize = 40;
    let stream = gen_stream(0xDE17A, 30 * BATCH); // 1200 tweets
    let dir = scratch("delta");
    // MentionExtraction skips the (quadratic) clustering stages — the
    // byte accounting under test is identical in every ablation mode.
    let cfg = GlobalizerConfig {
        ablation: AblationMode::MentionExtraction,
        ..Default::default()
    };
    let (mut durable, _) = DurableGlobalizer::open(pipeline(1, cfg), &dir, 10).expect("open");
    let mut deltas = Vec::new();
    for chunk in stream.chunks(BATCH) {
        durable.process_batch(chunk.to_vec()).expect("batch");
        durable.finalize().expect("finalize");
        deltas.push(durable.stats().delta_bytes_last);
    }
    let stats = durable.stats();
    assert_eq!(stats.batches as usize, deltas.len());
    assert!(stats.snapshots >= 2, "cadence of 10 over 30 batches must snapshot");

    // The delta for a batch is the batch inputs plus bounded metadata:
    // it must not grow with the stream. Compare the mean of the last
    // five batches against the first five.
    let head: u64 = deltas[..5].iter().sum();
    let tail: u64 = deltas[deltas.len() - 5..].iter().sum();
    assert!(
        tail < 2 * head,
        "per-batch delta grew with the stream: first five {head} B, last five {tail} B"
    );
    // A full snapshot rewrites the whole state; past 1k tweets a delta
    // checkpoint must be at least 10x cheaper.
    let last = *deltas.last().expect("deltas");
    assert!(
        last * 10 < stats.snapshot_bytes_last,
        "delta {last} B is not sublinear vs snapshot {} B",
        stats.snapshot_bytes_last
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_cold_caps_resident_memory_without_changing_output() {
    const BATCH: usize = 20;
    const BUDGET: usize = 6 * 1024;
    let stream = gen_stream(0x5C01D, 16 * BATCH);
    for threads in [1usize, 4] {
        // Reference: unbounded run, plain pipeline, same batching.
        let mut unbounded = pipeline(threads, full_cfg(RetentionPolicy::Unbounded));
        let mut want: Vec<Vec<Span>> = Vec::new();
        for chunk in stream.chunks(BATCH) {
            unbounded.process_batch_owned(chunk.to_vec());
            want = unbounded.finalize();
        }
        assert!(
            unbounded.candidate_base().resident_bytes() > 2 * BUDGET,
            "stream too small to exercise the cap"
        );

        let dir = scratch(&format!("spill-{threads}t"));
        let (mut durable, _) =
            DurableGlobalizer::open(pipeline(threads, full_cfg(RetentionPolicy::SpillCold(BUDGET))), &dir, 6)
                .expect("open");
        let mut got: Vec<Vec<Span>> = Vec::new();
        for chunk in stream.chunks(BATCH) {
            durable.process_batch(chunk.to_vec()).expect("batch");
            got = durable.finalize().expect("finalize");
            assert!(durable.take_finalize_errors().is_empty(), "spill must not error");
            let resident = durable.inner().candidate_base().resident_bytes();
            assert!(
                resident <= BUDGET,
                "resident candidate memory {resident} B over the {BUDGET} B cap ({threads}t)"
            );
        }
        let pool = durable.spill_pool().expect("SpillCold must carry a pool");
        assert!(!pool.is_empty(), "nothing was ever spilled ({threads}t)");
        assert_eq!(
            durable.inner().candidate_base().len() + pool.len(),
            unbounded.candidate_base().len(),
            "resident + spilled surfaces must partition the unbounded surface set"
        );
        assert_eq!(got, want, "SpillCold changed the emitted spans ({threads}t)");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn reopening_a_store_continues_bitwise_identically() {
    const BATCH: usize = 10;
    let stream = gen_stream(0x2E09E4, 8 * BATCH);
    for retention in [RetentionPolicy::Unbounded, RetentionPolicy::SpillCold(4 * 1024)] {
        for threads in [1usize, 4] {
            let tag = format!("reopen-{threads}t-{:?}", std::mem::discriminant(&retention));
            // One continuous durable run.
            let dir_a = scratch(&format!("{tag}-a"));
            let (mut run_a, _) =
                DurableGlobalizer::open(pipeline(threads, full_cfg(retention)), &dir_a, 3)
                    .expect("open a");
            let mut want: Vec<Vec<Span>> = Vec::new();
            for chunk in stream.chunks(BATCH) {
                run_a.process_batch(chunk.to_vec()).expect("batch a");
                want = run_a.finalize().expect("finalize a");
            }

            // The same stream, stopped halfway and resumed from disk
            // with a freshly built pipeline.
            let dir_b = scratch(&format!("{tag}-b"));
            let half = stream.len() / 2;
            {
                let (mut first, _) =
                    DurableGlobalizer::open(pipeline(threads, full_cfg(retention)), &dir_b, 3)
                        .expect("open b1");
                for chunk in stream[..half].chunks(BATCH) {
                    first.process_batch(chunk.to_vec()).expect("batch b1");
                    first.finalize().expect("finalize b1");
                }
            } // dropped: clean shutdown, no explicit flush call
            let (mut second, report) =
                DurableGlobalizer::open(pipeline(threads, full_cfg(retention)), &dir_b, 3)
                    .expect("open b2");
            assert!(!report.torn_tail, "clean shutdown must not look torn");
            assert_eq!(report.tweets, half, "recovery must land on the stopped state");
            let mut got: Vec<Vec<Span>> = Vec::new();
            for chunk in stream[half..].chunks(BATCH) {
                second.process_batch(chunk.to_vec()).expect("batch b2");
                got = second.finalize().expect("finalize b2");
            }

            assert_eq!(got, want, "{tag}: resumed run diverged");
            assert_eq!(
                run_a.inner().state_digest(),
                second.inner().state_digest(),
                "{tag}: state digests diverged"
            );
            assert_eq!(
                run_a.inner().export_state_bytes(),
                second.inner().export_state_bytes(),
                "{tag}: resident state bytes diverged"
            );
            let _ = std::fs::remove_dir_all(&dir_a);
            let _ = std::fs::remove_dir_all(&dir_b);
        }
    }
}

#[test]
fn frozen_mentions_of_evicted_tweets_go_stale_on_trie_growth() {
    // Keep only the last 4 tweets resident so early mentions freeze.
    let cfg = full_cfg(RetentionPolicy::MaxTweets(4));
    let mut p = pipeline(1, cfg);
    let phase1: Vec<Vec<String>> = vec![
        vec!["Beshear".into(), "spoke".into(), "today".into()],
        vec!["Beshear".into(), "won".into()],
    ];
    p.process_batch_owned(phase1);
    p.finalize();
    assert!(p.stale_frozen_mentions().is_empty(), "nothing frozen or stale yet");
    let v1 = p.trie_version();

    // Push the early tweets out of retention with filler...
    let filler: Vec<Vec<String>> = (0..6)
        .map(|_| vec!["about".into(), "stream".into(), "covid".into()])
        .collect();
    p.process_batch_owned(filler);
    p.finalize();
    assert!(p.tweet_base().first_retained() >= 2, "early tweets must be evicted");
    assert!(
        p.stale_frozen_mentions().is_empty(),
        "frozen mentions are not stale while the trie is unchanged"
    );

    // ...then grow the CTrie with a brand-new surface.
    p.process_batch_owned(vec![vec!["Madrid".into(), "rally".into()]]);
    p.finalize();
    assert!(p.trie_version() > v1, "a new surface must bump the trie version");

    let stale = p.stale_frozen_mentions();
    assert!(!stale.is_empty(), "frozen Beshear mentions must now be flagged stale");
    for (surface, tweet, _, _) in &stale {
        assert_eq!(surface, "beshear");
        assert!(*tweet < p.tweet_base().first_retained());
    }
    // Retained mentions were re-stamped by the rebuild: none flagged.
    assert!(stale.iter().all(|(_, t, _, _)| *t < 2), "only evicted tweets can be stale");
}
