//! End-to-end tests for the serving front-end (`ngl-serve`).
//!
//! The serving contract under test:
//!
//! 1. **Batching ingest** — concurrent clients submit tweets; the
//!    engine coalesces them into multi-tweet batches and every tweet
//!    gets exactly one typed ack.
//! 2. **Kill-under-load durability** — SIGKILL the serving process
//!    mid-load, restart on the same store dir, and the recovered state
//!    is bitwise identical to a clean run over the committed batch
//!    partition; every acked tweet survives, and nothing that was never
//!    submitted appears.
//! 3. **Admission control** — storage faults (chaos ENOSPC) and queue
//!    overflow shed with typed responses, within deadlines, without
//!    taking the server down.
//!
//! The kill tests drive the `serve_harness` binary (deterministic
//! devstack models, so a restarted process reconstructs the same
//! pipeline); everything else runs the server in-process.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ner_globalizer::core::{DurableGlobalizer, GlobalizerConfig, PoolPolicy};
use ner_globalizer::runtime::faults::{IoFault, IoFaultKind, IoFaultPlan, IoOp, IoPathClass};
use ner_globalizer::serve::client::{percent_encode, Client};
use ner_globalizer::serve::{devstack, ServeConfig, Server};
use ner_globalizer::store::{IoHandle, RetryPolicy};
use ner_globalizer::text::tokenize;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ngl-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shared_cfg() -> GlobalizerConfig {
    GlobalizerConfig { pool: PoolPolicy::Shared, ..Default::default() }
}

/// Deterministic tweet text for an id — the kill-under-load oracle
/// regenerates the exact payload of every replayed id from this.
fn tweet_text(id: u64) -> String {
    let people = ["Alice Fern", "Bob Quill", "Cara Moss", "Dan Reed"];
    let places = ["Paris", "Oslo", "Lima", "Cairo"];
    format!(
        "{} visits {} again t{id}",
        people[(id % 4) as usize],
        places[((id / 4) % 4) as usize]
    )
}

fn tweet_tokens(id: u64) -> Vec<String> {
    tokenize(&tweet_text(id)).into_iter().map(|t| t.text).collect()
}

/// Pulls `(id, status)` pairs out of an `/ingest` response body.
fn parse_results(body: &str) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    for part in body.split("{\"id\":").skip(1) {
        let end = part.find([',', '}']).expect("id terminator");
        let id: u64 = part[..end].parse().expect("numeric id");
        let status = part
            .split("\"status\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("status field")
            .to_string();
        out.push((id, status));
    }
    out
}

/// Reads one numeric counter out of a flat JSON body.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len()..];
    let rest = rest.trim_start_matches('"');
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|_| panic!("numeric {key} in {body}"))
}

/// Parses the `batch_ids` array-of-arrays out of a `/recovery` body.
fn parse_batch_ids(body: &str) -> Vec<Vec<u64>> {
    let pat = "\"batch_ids\":[";
    let start = body.find(pat).expect("batch_ids field") + pat.len();
    let mut out = Vec::new();
    let mut cur: Option<Vec<u64>> = None;
    let mut num = String::new();
    for c in body[start..].chars() {
        match c {
            '[' => cur = Some(Vec::new()),
            '0'..='9' => num.push(c),
            ',' => {
                if let (Some(v), false) = (cur.as_mut(), num.is_empty()) {
                    v.push(num.parse().expect("batch id"));
                    num.clear();
                }
            }
            ']' => match cur.take() {
                Some(mut v) => {
                    if !num.is_empty() {
                        v.push(num.parse().expect("batch id"));
                        num.clear();
                    }
                    out.push(v);
                }
                None => return out, // outer array closed
            },
            _ => {}
        }
    }
    out
}

/// `GET path` returning the raw body bytes (the keep-alive [`Client`]
/// is text-only; `/export` is binary).
fn get_bytes(addr: &str, path: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head =
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let content_length: usize = head
        .split("\r\n")
        .find_map(|l| l.split_once(':').filter(|(n, _)| n.trim().eq_ignore_ascii_case("content-length")))
        .and_then(|(_, v)| v.trim().parse().ok())
        .expect("content-length");
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    body
}

// ---- in-process: batching + query path ---------------------------------

#[test]
fn concurrent_clients_coalesce_into_batches_and_queries_see_finalized_state() {
    const WRITERS: u64 = 4;
    const REQUESTS: u64 = 10;
    const LINES: u64 = 5;
    let dir = scratch("batching");
    let (durable, recovery) =
        DurableGlobalizer::open(devstack::pipeline(shared_cfg()), &dir, 8).expect("open");
    let server = Server::start(
        durable,
        recovery,
        ServeConfig {
            max_batch: 32,
            max_delay_ms: 20,
            finalize_every: 4,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut acked = Vec::new();
                for r in 0..REQUESTS {
                    let body: String = (0..LINES)
                        .map(|l| {
                            let id = w * 1_000_000 + r * LINES + l;
                            format!("{id}\t{}\n", tweet_text(id))
                        })
                        .collect();
                    let (status, body) = client.ingest(&body).expect("ingest");
                    assert_eq!(status, 200, "no shedding expected: {body}");
                    for (id, st) in parse_results(&body) {
                        assert!(
                            st == "acked" || st == "acked_truncated",
                            "tweet {id} not acked: {st}"
                        );
                        acked.push(id);
                    }
                }
                acked
            })
        })
        .collect();
    let mut acked = HashSet::new();
    for handle in handles {
        acked.extend(handle.join().expect("writer"));
    }
    let total = WRITERS * REQUESTS * LINES;
    assert_eq!(acked.len() as u64, total, "every submitted tweet acked exactly once");

    let mut client = Client::new(addr);
    let (status, stats) = client.get("/stats").expect("stats");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&stats, "accepted"), total);
    let batches = json_u64(&stats, "batches");
    assert!(batches >= 1);
    assert!(
        batches < total,
        "concurrent submissions must coalesce: {batches} batches for {total} tweets"
    );
    assert!(json_u64(&stats, "max_batch") >= 2, "at least one multi-tweet batch");
    assert_eq!(json_u64(&stats, "failed"), 0);
    assert_eq!(json_u64(&stats, "shed_queue_full"), 0);

    // The queue has drained, so the idle finalize has published every
    // acked tweet into the query snapshot.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, digest) = client.get("/digest").expect("digest");
        assert_eq!(status, 200);
        if json_u64(&digest, "tweets") == total {
            break;
        }
        assert!(Instant::now() < deadline, "snapshot never caught up: {digest}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, tagged) = client
        .get(&format!("/tag?q={}", percent_encode("Alice Fern visits Paris")))
        .expect("tag");
    assert_eq!(status, 200);
    assert!(tagged.contains("\"tokens\":[\"Alice\""), "echoes tokens: {tagged}");
    assert!(tagged.contains("\"spans\":["), "has a spans array: {tagged}");
    let (status, surface) = client
        .get(&format!("/surface?s={}", percent_encode("Alice Fern")))
        .expect("surface");
    assert_eq!(status, 200);
    assert!(
        surface.contains("\"known\":true"),
        "an ingested surface is in the trie: {surface}"
    );
    assert!(json_u64(&surface, "mentions") > 0, "mentions counted: {surface}");
    let (status, health) = client.get("/health").expect("health");
    assert_eq!(status, 200);
    assert!(health.contains("\"admitting\":true"), "healthy store admits: {health}");
    let (status, _) = client.get("/nope").expect("404");
    assert_eq!(status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- harness-driven: kill under load -----------------------------------

struct Harness {
    child: Child,
    addr: String,
}

fn spawn_harness(dir: &std::path::Path, extra: &[&str]) -> Harness {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve_harness"))
        .arg("--store-dir")
        .arg(dir)
        .args(["--addr", "127.0.0.1:0", "--finalize-every", "1"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn serve_harness");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
    let addr = line
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected harness banner: {line:?}"))
        .trim()
        .to_string();
    Harness { child, addr }
}

#[test]
fn sigkill_under_load_recovers_bitwise_identical_to_clean_run() {
    const WRITERS: u64 = 4;
    let dir = scratch("kill");
    // Snapshots fold committed batches out of the WAL, and the
    // /recovery partition only covers what *replays*; disabling them
    // keeps `batch_ids` the complete committed history, which is what
    // the clean-run oracle below needs.
    let harness_args: &[&str] =
        &["--max-batch", "8", "--max-delay-ms", "2", "--checkpoint-every", "1000000"];
    let harness = spawn_harness(&dir, harness_args);
    let addr = harness.addr.clone();
    let mut child = harness.child;

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = addr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut submitted = Vec::new();
                let mut acked = Vec::new();
                let mut next = w * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    let id = next;
                    next += 1;
                    submitted.push(id);
                    let line = format!("{id}\t{}", tweet_text(id));
                    match client.ingest(&line) {
                        Ok((_, body)) => {
                            for (rid, st) in parse_results(&body) {
                                if st == "acked" || st == "acked_truncated" {
                                    acked.push(rid);
                                }
                            }
                        }
                        // The SIGKILL tears the connection down
                        // mid-request; everything after it fails too.
                        Err(_) => break,
                    }
                }
                (submitted, acked)
            })
        })
        .collect();

    // Let load build, then SIGKILL mid-flight — no shutdown path runs.
    std::thread::sleep(Duration::from_millis(400));
    child.kill().expect("kill");
    let _ = child.wait();
    stop.store(true, Ordering::Relaxed);
    let mut submitted = HashSet::new();
    let mut acked = HashSet::new();
    for handle in handles {
        let (s, a) = handle.join().expect("writer");
        submitted.extend(s);
        acked.extend(a);
    }
    assert!(!acked.is_empty(), "the run must ack something before the kill");

    // Restart on the same store. Its recovery report carries the exact
    // committed batch partition; its published snapshot folds in the
    // startup finalize, so /digest is a function of that partition.
    let restarted = spawn_harness(&dir, harness_args);
    let mut client = Client::new(restarted.addr.clone());
    let (status, recovery) = client.get("/recovery").expect("recovery");
    assert_eq!(status, 200);
    let batch_ids = parse_batch_ids(&recovery);
    let replayed: HashSet<u64> = batch_ids.iter().flatten().copied().collect();
    let replayed_total: usize = batch_ids.iter().map(Vec::len).sum();
    assert_eq!(replayed.len(), replayed_total, "no id committed twice");
    for id in &acked {
        assert!(replayed.contains(id), "acked tweet {id} lost by recovery");
    }
    for id in &replayed {
        assert!(
            submitted.contains(id),
            "recovered tweet {id} was never submitted (unacked in-flight ids are \
             allowed — their batch committed before the ack got out — but \
             unknown ids are corruption)"
        );
    }
    let (status, digest_body) = client.get("/digest").expect("digest");
    assert_eq!(status, 200);
    let recovered_digest = json_u64(&digest_body, "digest");
    let export = get_bytes(&restarted.addr, "/export");
    let mut child = restarted.child;
    child.kill().expect("kill restarted");
    let _ = child.wait();

    // Clean-run oracle: same deterministic devstack models, the exact
    // recovered batch partition, finalize after every batch (the
    // harness runs --finalize-every 1).
    let oracle_dir = scratch("kill-oracle");
    let (mut oracle, _) =
        DurableGlobalizer::open(devstack::pipeline(shared_cfg()), &oracle_dir, 4).expect("oracle");
    for ids in &batch_ids {
        let payload: Vec<(u64, Vec<String>)> =
            ids.iter().map(|&id| (id, tweet_tokens(id))).collect();
        oracle.process_batch_with_ids(payload).expect("oracle batch");
        oracle.finalize().expect("oracle finalize");
    }
    oracle.finalize().expect("oracle tail finalize");
    assert_eq!(
        oracle.inner().state_digest(),
        recovered_digest,
        "recovered digest must equal a clean run over the committed partition"
    );
    assert_eq!(
        &oracle.inner().export_state_bytes()[..],
        &export[..],
        "recovered state must be bitwise identical to the clean run"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&oracle_dir);
}

// ---- admission control -------------------------------------------------

#[test]
fn enospc_degrades_to_typed_sheds_while_queries_stay_up() {
    let dir = scratch("enospc");
    // WAL write #0 creates segment zero at open, #1 is the server's
    // startup finalize mark, #2 is the first batch commit. A wide span
    // keeps the disk "full" for the whole test, so the degradation
    // ladder wedges at ReadOnly.
    let plan = IoFaultPlan::new().with_fault(IoFault {
        op: IoOp::Write,
        class: IoPathClass::Wal,
        index: 2,
        kind: IoFaultKind::NoSpace { span: 10_000 },
    });
    let io = IoHandle::chaos(plan, RetryPolicy::default().no_sleep());
    let (durable, recovery) =
        DurableGlobalizer::open_with_io(devstack::pipeline(shared_cfg()), &dir, 100, None, io)
            .expect("open");
    let server = Server::start(
        durable,
        recovery,
        ServeConfig { max_batch: 4, max_delay_ms: 2, finalize_every: 1, ..ServeConfig::default() },
    )
    .expect("start");
    let mut client = Client::new(server.addr().to_string());

    // The first batch hits the injected ENOSPC: the commit fails, the
    // submitter gets a typed `failed` ack (not a hang, not a panic).
    let (_, body) = client.ingest("1\tAlice Fern visits Paris").expect("ingest");
    let results = parse_results(&body);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, "failed", "commit failure must surface typed: {body}");

    // The engine refreshes its store view right after the failed
    // commit; within the deadline the server advertises ReadOnly...
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, health) = client.get("/health").expect("health");
        if health.contains("\"mode\":\"ReadOnly\"") {
            assert!(health.contains("\"admitting\":false"), "read-only store admits: {health}");
            break;
        }
        assert!(Instant::now() < deadline, "never reached ReadOnly: {health}");
        std::thread::sleep(Duration::from_millis(10));
    }
    // ...and sheds new writes up front with a typed 503.
    let (status, body) = client.ingest("2\tBob Quill visits Oslo").expect("ingest while degraded");
    assert_eq!(status, 503, "degraded store sheds: {body}");
    assert!(body.contains("\"error\":\"degraded\""), "typed shed: {body}");
    assert!(body.contains("ReadOnly"), "shed names the mode: {body}");
    let (_, stats) = client.get("/stats").expect("stats");
    assert!(json_u64(&stats, "shed_degraded") >= 1);
    assert_eq!(json_u64(&stats, "failed"), 1);

    // The query path never touches the WAL: still up, still typed.
    let (status, tagged) = client
        .get(&format!("/tag?q={}", percent_encode("Alice Fern visits Paris")))
        .expect("tag");
    assert_eq!(status, 200);
    assert!(tagged.contains("\"spans\":["));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_sheds_typed_per_tweet() {
    const LINES: u64 = 200;
    let dir = scratch("queuefull");
    let (durable, recovery) =
        DurableGlobalizer::open(devstack::pipeline(shared_cfg()), &dir, 8).expect("open");
    // A one-slot queue behind 64-tweet batches: one oversized request
    // outruns the engine by construction, so the tail of the request
    // must shed rather than block the connection handler.
    let server = Server::start(
        durable,
        recovery,
        ServeConfig {
            max_batch: 64,
            max_delay_ms: 50,
            queue_cap: 1,
            finalize_every: 8,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let mut client = Client::new(server.addr().to_string());
    let body: String = (0..LINES).map(|id| format!("{id}\t{}\n", tweet_text(id))).collect();
    let (status, body) = client.ingest(&body).expect("ingest");
    let results = parse_results(&body);
    assert_eq!(results.len() as u64, LINES, "every line gets a typed status");
    let shed = results.iter().filter(|(_, s)| s == "shed_queue_full").count();
    let acked = results
        .iter()
        .filter(|(_, s)| s == "acked" || s == "acked_truncated")
        .count();
    assert!(shed >= 1, "a full queue must shed: {body}");
    assert!(acked >= 1, "the enqueued head must still commit");
    assert_eq!(shed + acked, LINES as usize, "typed statuses only: {body}");
    assert_eq!(status, 429, "a shedding response is marked 429");
    let (_, stats) = client.get("/stats").expect("stats");
    assert_eq!(json_u64(&stats, "shed_queue_full"), shed as u64);
    assert_eq!(json_u64(&stats, "accepted"), acked as u64);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
