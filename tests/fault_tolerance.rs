//! Deterministic fault-injection harness over the full pipeline.
//!
//! A seeded [`FaultPlan`] decides which stream positions go bad and
//! how ([`FaultKind`]); the harness manifests each fault (sentinel
//! tokens for panics / NaN embeddings, cleared token lists, oversized
//! token lists, re-used tweet ids) and then asserts the two contract
//! halves of fault isolation:
//!
//! 1. every injected fault is *enumerated* — it surfaces in a
//!    [`BatchReport`](ner_globalizer::core::BatchReport) as a typed
//!    rejection or truncation, never as a crash;
//! 2. the faulty run leaves *no trace* — final outputs and candidate
//!    state are bitwise identical to a clean run over the surviving
//!    inputs, at every worker count.

use std::collections::BTreeSet;

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer,
    PhraseEmbedder, PhraseEmbedderConfig,
};
use ner_globalizer::encoder::{ContextualTagger, SentenceEncoding, SequenceTagger};
use ner_globalizer::nn::Matrix;
use ner_globalizer::runtime::faults::{FaultKind, FaultPlan, SplitMix64, NAN_TOKEN, PANIC_TOKEN};
use ner_globalizer::runtime::Executor;
use ner_globalizer::text::{BioTag, EntityType};

const DIM: usize = 8;
/// Token cap configured on the pipeline under test (small so the
/// oversize fault actually trips it).
const CAP: usize = 16;
const BATCH: usize = 7;

/// Deterministic stand-in for Local NER: capitalized tokens tag as
/// B-PER, embeddings are a case-folded hash one-hot — plus the fault
/// sentinels: a [`PANIC_TOKEN`] anywhere in the tweet panics the
/// encode task, a [`NAN_TOKEN`] poisons the embeddings with NaN.
struct FaultyTagger;

impl SequenceTagger for FaultyTagger {
    fn tag(&self, tokens: &[String]) -> Vec<BioTag> {
        tokens
            .iter()
            .map(|t| {
                if t.chars().next().is_some_and(|c| c.is_uppercase()) {
                    BioTag::B(EntityType::Person)
                } else {
                    BioTag::O
                }
            })
            .collect()
    }
}

impl ContextualTagger for FaultyTagger {
    fn dim(&self) -> usize {
        DIM
    }

    fn encode(&self, tokens: &[String]) -> SentenceEncoding {
        if tokens.iter().any(|t| t == PANIC_TOKEN) {
            panic!("poison tweet");
        }
        let mut emb = Matrix::zeros(tokens.len(), DIM);
        for (i, t) in tokens.iter().enumerate() {
            let h = t.to_lowercase().bytes().map(|b| b as usize).sum::<usize>();
            emb.row_mut(i)[h % DIM] = 1.0;
        }
        if tokens.iter().any(|t| t == NAN_TOKEN) {
            emb.row_mut(0)[0] = f32::NAN;
        }
        let tags = self.tag(tokens);
        SentenceEncoding { embeddings: emb, tags, probs: Matrix::zeros(tokens.len(), BioTag::COUNT) }
    }
}

fn pipeline(threads: usize) -> NerGlobalizer<FaultyTagger> {
    NerGlobalizer::new(
        FaultyTagger,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim: DIM, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim: DIM, ..Default::default() }),
        GlobalizerConfig {
            ablation: AblationMode::FullGlobal,
            max_tweet_tokens: CAP,
            reject_empty: true,
            ..Default::default()
        },
    )
    .with_executor(Executor::new(threads))
}

/// A reproducible id-carrying token stream.
fn gen_stream(seed: u64, n: usize) -> Vec<(u64, Vec<String>)> {
    const VOCAB: [&str; 12] = [
        "Beshear", "Italy", "Madrid", "Wolves", "spoke", "won", "today", "about", "stream",
        "covid", "rally", "again",
    ];
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let len = 3 + rng.next_below(6) as usize;
            let tokens = (0..len)
                .map(|_| VOCAB[rng.next_below(VOCAB.len() as u64) as usize].to_string())
                .collect();
            (1000 + i as u64, tokens)
        })
        .collect()
}

/// The mutated stream plus the ground truth the reports must match.
struct Injected {
    stream: Vec<(u64, Vec<String>)>,
    /// Input indices that must be rejected (panic, NaN, empty,
    /// duplicate id).
    expect_rejected: BTreeSet<usize>,
    /// Input indices that must be reported as truncated.
    expect_truncated: BTreeSet<usize>,
    /// The surviving inputs (tokens post-truncation), with their
    /// original stream indices.
    survivors: Vec<(usize, u64, Vec<String>)>,
}

/// Manifests `plan` on `base` and derives, by simulating the ingress
/// rules, exactly which indices must be rejected or truncated.
fn inject(base: &[(u64, Vec<String>)], plan: &FaultPlan) -> Injected {
    let mut stream = base.to_vec();
    for (i, kind) in plan.iter() {
        let (id, tokens) = &mut stream[i];
        match kind {
            FaultKind::TaskPanic => tokens.insert(0, PANIC_TOKEN.to_string()),
            FaultKind::NanEmbedding => tokens.insert(0, NAN_TOKEN.to_string()),
            FaultKind::EmptyTweet => tokens.clear(),
            FaultKind::OversizeTweet => {
                while tokens.len() <= 2 * CAP {
                    tokens.push("filler".to_string());
                }
            }
            // Re-use a neighbour's id; first sight claims the id, so
            // the *later* holder is the one rejected.
            FaultKind::DuplicateId => *id = if i == 0 { base[1].0 } else { base[i - 1].0 },
        }
    }
    let mut seen = BTreeSet::new();
    let mut expect_rejected = BTreeSet::new();
    let mut expect_truncated = BTreeSet::new();
    let mut survivors = Vec::new();
    for (i, (id, tokens)) in stream.iter().enumerate() {
        let mut toks = tokens.clone();
        if toks.len() > CAP {
            toks.truncate(CAP);
            expect_truncated.insert(i);
        }
        if !seen.insert(*id) {
            expect_rejected.insert(i);
            continue;
        }
        if toks.is_empty() {
            expect_rejected.insert(i);
            continue;
        }
        if toks.iter().any(|t| t == PANIC_TOKEN || t == NAN_TOKEN) {
            expect_rejected.insert(i);
            continue;
        }
        survivors.push((i, *id, toks));
    }
    Injected { stream, expect_rejected, expect_truncated, survivors }
}

/// Flattens the candidate store into an exactly comparable fingerprint
/// (f32s by bit pattern).
fn fingerprint(p: &NerGlobalizer<FaultyTagger>) -> Vec<(String, Vec<u64>, Vec<u32>)> {
    p.candidate_base()
        .iter()
        .map(|(surface, e)| {
            let mut nums: Vec<u64> = Vec::new();
            let mut bits: Vec<u32> = Vec::new();
            for m in &e.mentions {
                nums.extend([m.tweet as u64, m.start as u64, m.end as u64]);
                bits.extend(m.local_emb.iter().map(|x| x.to_bits()));
            }
            for c in &e.clusters {
                nums.push(u64::MAX);
                nums.extend(c.members.iter().map(|&m| m as u64));
                bits.extend(c.global_emb.iter().map(|x| x.to_bits()));
            }
            (surface.to_string(), nums, bits)
        })
        .collect()
}

/// Feeds `stream` in fixed-size batches with a finalize after each,
/// returning the final outputs plus the globally-indexed rejection and
/// truncation sets accumulated from every [`BatchReport`].
fn run_stream(
    p: &mut NerGlobalizer<FaultyTagger>,
    stream: &[(u64, Vec<String>)],
) -> (Vec<Vec<ner_globalizer::text::Span>>, BTreeSet<usize>, BTreeSet<usize>, usize) {
    let mut rejected = BTreeSet::new();
    let mut truncated = BTreeSet::new();
    let mut n_errors = 0;
    let mut out = Vec::new();
    for (b, chunk) in stream.chunks(BATCH).enumerate() {
        let offset = b * BATCH;
        let (_, report) = p.try_process_batch_with_ids(chunk.to_vec());
        assert_eq!(
            report.rejected.len(),
            report.errors.len(),
            "one typed error per rejection"
        );
        for (slot, err) in report.rejected.iter().zip(&report.errors) {
            assert_eq!(err.index, *slot, "error indices mirror rejected slots");
            rejected.insert(offset + slot);
        }
        truncated.extend(report.truncated.iter().map(|i| offset + i));
        n_errors += report.errors.len();
        out = p.finalize();
        assert!(p.take_finalize_errors().is_empty(), "clean records never fail the scan");
    }
    (out, rejected, truncated, n_errors)
}

#[test]
fn seeded_fault_plans_are_enumerated_and_leave_no_trace() {
    const N: usize = 24;
    for seed in [11u64, 42, 777] {
        let base = gen_stream(seed, N);
        let plan = FaultPlan::seeded(seed, N, 6);
        let injected = inject(&base, &plan);
        let mut outputs_by_threads = Vec::new();
        for threads in [1usize, 4] {
            let mut faulty = pipeline(threads);
            let (out, rejected, truncated, n_errors) = run_stream(&mut faulty, &injected.stream);
            assert_eq!(rejected, injected.expect_rejected, "seed {seed}, {threads} threads");
            assert_eq!(truncated, injected.expect_truncated, "seed {seed}, {threads} threads");
            assert_eq!(n_errors, injected.expect_rejected.len());
            assert_eq!(out.len(), injected.survivors.len(), "one output row per survivor");

            // A clean pipeline fed only the survivors (same batch
            // boundaries, same worker count) must be indistinguishable.
            let mut clean = pipeline(threads);
            let mut clean_out = Vec::new();
            for (b, chunk) in injected.stream.chunks(BATCH).enumerate() {
                let lo = b * BATCH;
                let hi = lo + chunk.len();
                let batch: Vec<(u64, Vec<String>)> = injected
                    .survivors
                    .iter()
                    .filter(|(i, _, _)| lo <= *i && *i < hi)
                    .map(|(_, id, toks)| (*id, toks.clone()))
                    .collect();
                let (_, report) = clean.try_process_batch_with_ids(batch);
                assert!(report.all_ok(), "survivors are clean by construction");
                clean_out = clean.finalize();
            }
            assert_eq!(out, clean_out, "faulty run diverged from clean-over-survivors");
            assert_eq!(fingerprint(&faulty), fingerprint(&clean));
            assert_eq!(faulty.tweet_base().len(), clean.tweet_base().len());
            assert_eq!(faulty.cached_mentions(), clean.cached_mentions());
            outputs_by_threads.push(out);
        }
        assert_eq!(
            outputs_by_threads[0], outputs_by_threads[1],
            "worker count must not change faulty-run output (seed {seed})"
        );
    }
}

#[test]
fn one_fault_of_each_kind_is_reported_precisely() {
    let base = gen_stream(9, 8);
    let plan = FaultPlan::new()
        .with_fault(1, FaultKind::TaskPanic)
        .with_fault(2, FaultKind::NanEmbedding)
        .with_fault(3, FaultKind::EmptyTweet)
        .with_fault(4, FaultKind::OversizeTweet)
        .with_fault(5, FaultKind::DuplicateId);
    let injected = inject(&base, &plan);
    let mut p = pipeline(2);
    let (_, report) = p.try_process_batch_with_ids(injected.stream.clone());
    assert_eq!(report.ok, vec![0, 4, 6, 7]);
    assert_eq!(report.rejected, vec![1, 2, 3, 5]);
    assert_eq!(report.truncated, vec![4]);
    let msg = |i: usize| {
        report.errors.iter().find(|e| e.index == i).expect("error for index").message.as_str()
    };
    assert_eq!(msg(1), "poison tweet");
    assert_eq!(msg(2), "non-finite embeddings rejected");
    assert_eq!(msg(3), "empty tweet rejected");
    assert_eq!(msg(5), format!("duplicate tweet id {}", base[4].0));
    // Payload summaries point back at the offending input.
    let panic_err = report.errors.iter().find(|e| e.index == 1).unwrap();
    assert!(panic_err.payload.contains("input #1"), "payload: {}", panic_err.payload);
    // The stored stream is exactly the four accepted tweets.
    assert_eq!(p.tweet_base().len(), 4);
    p.finalize();
    assert!(p.take_finalize_errors().is_empty());
}

#[test]
fn fault_free_plans_change_nothing() {
    let base = gen_stream(5, 12);
    let injected = inject(&base, &FaultPlan::new());
    assert!(injected.expect_rejected.is_empty());
    assert!(injected.expect_truncated.is_empty());
    let mut a = pipeline(1);
    let mut b = pipeline(4);
    let (out_a, rej, trunc, n) = run_stream(&mut a, &injected.stream);
    assert!(rej.is_empty() && trunc.is_empty() && n == 0);
    let (out_b, ..) = run_stream(&mut b, &injected.stream);
    assert_eq!(out_a, out_b);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
