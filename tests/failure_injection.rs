//! Failure-injection and degenerate-input tests: the pipeline must stay
//! well-defined when its inputs are pathological — empty batches, empty
//! sentences, entity-free streams, punctuation storms, repeated
//! finalize calls.

use ner_globalizer::core::{
    AblationMode, ClassifierConfig, EntityClassifier, GlobalizerConfig, NerGlobalizer,
    PhraseEmbedder, PhraseEmbedderConfig,
};
use ner_globalizer::encoder::{EncoderConfig, TokenEncoder};
use ner_globalizer::text::tokenize;

fn untrained_pipeline(mode: AblationMode) -> NerGlobalizer<TokenEncoder> {
    let dim = 12;
    let enc = TokenEncoder::new(EncoderConfig {
        embed_dim: 8,
        hidden_dim: 12,
        out_dim: dim,
        seed: 77,
        ..Default::default()
    });
    NerGlobalizer::new(
        enc,
        PhraseEmbedder::new(PhraseEmbedderConfig { dim, ..Default::default() }),
        EntityClassifier::new(ClassifierConfig { dim, ..Default::default() }),
        GlobalizerConfig { ablation: mode, ..Default::default() },
    )
}

fn toks(s: &str) -> Vec<String> {
    tokenize(s).into_iter().map(|t| t.text).collect()
}

#[test]
fn empty_batch_is_a_noop() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    let out = p.process_batch(&[]);
    assert!(out.local_spans.is_empty());
    assert!(p.finalize().is_empty());
}

#[test]
fn empty_sentences_flow_through() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    p.process_batch(&[vec![], toks("hello world"), vec![]]);
    let out = p.finalize();
    assert_eq!(out.len(), 3);
    assert!(out[0].is_empty());
    assert!(out[2].is_empty());
}

#[test]
fn punctuation_storm_does_not_panic() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    let weird = [
        toks("!!! ??? ... ---"),
        toks("###"),
        toks("@ # $ % ^"),
        toks("🦀 🦀 🦀"),
        toks("https://t.co/abc123 https://t.co/def456"),
    ];
    p.process_batch(&weird);
    let out = p.finalize();
    assert_eq!(out.len(), weird.len());
}

#[test]
fn repeated_finalize_is_idempotent() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    p.process_batch(&[toks("Beshear spoke in Italy"), toks("beshear again")]);
    let a = p.finalize();
    let b = p.finalize();
    let c = p.finalize();
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn finalize_before_any_batch_is_empty() {
    let mut p = untrained_pipeline(AblationMode::MentionExtraction);
    assert!(p.finalize().is_empty());
    assert_eq!(p.n_surfaces(), 0);
}

#[test]
fn single_token_sentences_work_in_all_modes() {
    for mode in [
        AblationMode::LocalOnly,
        AblationMode::MentionExtraction,
        AblationMode::LocalClassifier,
        AblationMode::FullGlobal,
    ] {
        let mut p = untrained_pipeline(mode);
        p.process_batch(&[toks("Coronavirus"), toks("x")]);
        let out = p.finalize();
        assert_eq!(out.len(), 2, "mode {mode:?}");
        for spans in &out {
            for s in spans {
                assert!(s.end <= 1);
            }
        }
    }
}

#[test]
fn very_long_sentence_is_handled() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    let long: Vec<String> = (0..500).map(|i| format!("tok{i}")).collect();
    p.process_batch(&[long]);
    let out = p.finalize();
    assert_eq!(out.len(), 1);
}

#[test]
fn duplicate_tweets_accumulate_mentions_not_surfaces() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    let t = toks("Beshear spoke in Italy today");
    p.process_batch(&[t.clone(), t.clone(), t]);
    p.finalize();
    let surfaces = p.n_surfaces();
    let mentions = p.candidate_base().total_mentions();
    // However many surfaces the untrained tagger seeds, three identical
    // tweets must give exactly 3× the per-tweet mentions and the same
    // surface count as one tweet would.
    assert!(mentions.is_multiple_of(3), "mentions {mentions} not a multiple of 3");
    let mut p1 = untrained_pipeline(AblationMode::FullGlobal);
    p1.process_batch(&[toks("Beshear spoke in Italy today")]);
    p1.finalize();
    assert_eq!(surfaces, p1.n_surfaces());
}

#[test]
fn stopword_only_detections_never_become_candidates() {
    // The untrained tagger tags arbitrarily; whatever it does, the
    // stopword filter must keep bare function words out of the CTrie.
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    let batch: Vec<Vec<String>> = (0..30)
        .map(|_| toks("the of in and to for this that"))
        .collect();
    p.process_batch(&batch);
    p.finalize();
    for (surface, _) in p.candidate_base().iter() {
        let toks: Vec<&str> = surface.split(' ').collect();
        assert!(
            !ner_globalizer::text::is_stopword_surface(&toks),
            "stopword surface {surface:?} leaked into the candidate base"
        );
    }
}

#[test]
fn unicode_and_mixed_script_tokens_survive_the_full_path() {
    let mut p = untrained_pipeline(AblationMode::FullGlobal);
    p.process_batch(&[
        toks("Überwachung in München heute"),
        toks("código nuevo für alle"),
        toks("ΚΟΣΜΟΣ και κόσμος"),
    ]);
    let out = p.finalize();
    assert_eq!(out.len(), 3);
}
